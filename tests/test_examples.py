"""Smoke: the example scripts run cleanly as subprocesses."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "Created new instance: gpi-" in out
    assert "History panel:" in out
    assert "Top table" in out
    assert "deployment timeline" in out


def test_cardio_workflow_example():
    out = run_example("cardio_workflow.py")
    assert "steps 3+4 total: 10.8 min (paper: 10.7 min)" in out
    assert "steps 3+4 total: 7.2 min (paper: 6.9 min)" in out
    assert "affyCelFileSamples.zip [ok]" in out


def test_transfer_comparison_example():
    out = run_example("transfer_comparison.py")
    assert "Figure 11" in out
    assert "refused" in out
    assert "retried automatically" in out


def test_workflow_sharing_example():
    out = run_example("workflow_sharing.py")
    assert "Workflow finished: ok" in out
    assert "bit-identical to the original: True" in out


@pytest.mark.slow
def test_elastic_scaling_example():
    out = run_example("elastic_scaling.py", timeout=400)
    assert "scale-up" in out
    assert "Final worker count: 1" in out


def test_reproduce_paper_example():
    out = run_example("reproduce_paper.py", timeout=400)
    assert "Figure 10 paper-vs-measured" in out
    assert "Figure 11 paper-vs-measured" in out
    assert "ablation" in out.lower()
