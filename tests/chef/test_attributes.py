"""Attribute precedence and deep merging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chef import NodeAttributes, deep_merge


def test_deep_merge_nested_dicts():
    base = {"galaxy": {"port": 8080, "admin": "a"}, "x": 1}
    extra = {"galaxy": {"admin": "b"}, "y": 2}
    out = deep_merge(base, extra)
    assert out == {"galaxy": {"port": 8080, "admin": "b"}, "x": 1, "y": 2}
    assert base["galaxy"]["admin"] == "a"  # input untouched


def test_deep_merge_replaces_non_dict_with_dict():
    assert deep_merge({"a": 1}, {"a": {"b": 2}}) == {"a": {"b": 2}}


def test_precedence_override_beats_default():
    attrs = NodeAttributes()
    attrs.set("override", {"condor": {"slots": 8}})
    attrs.set("default", {"condor": {"slots": 2, "interval": 20}})
    assert attrs.get("condor.slots") == 8
    assert attrs.get("condor.interval") == 20


def test_same_level_later_wins():
    attrs = NodeAttributes()
    attrs.set("default", {"k": 1})
    attrs.set("default", {"k": 2})
    assert attrs.get("k") == 2


def test_get_path_and_default():
    attrs = NodeAttributes()
    attrs.set("normal", {"a": {"b": {"c": 3}}})
    assert attrs.get("a.b.c") == 3
    assert attrs.get(["a", "b", "c"]) == 3
    assert attrs.get("a.b.missing", "fallback") == "fallback"
    assert attrs.get("a.b.c.too.deep", None) is None


def test_contains():
    attrs = NodeAttributes()
    attrs.set("default", {"a": {"b": None}})
    assert "a.b" in attrs
    assert "a.z" not in attrs


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        NodeAttributes().set("super", {})


@given(
    st.dictionaries(st.text(max_size=5), st.integers(), max_size=5),
    st.dictionaries(st.text(max_size=5), st.integers(), max_size=5),
)
def test_property_merge_keys_union_and_extra_wins(base, extra):
    out = deep_merge(base, extra)
    assert set(out) == set(base) | set(extra)
    for k in extra:
        assert out[k] == extra[k]
    for k in set(base) - set(extra):
        assert out[k] == base[k]
