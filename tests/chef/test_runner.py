"""Recipe compilation and converge semantics (idempotency, AMI preload)."""

import pytest

from repro.chef import (
    ChefNode,
    ChefRunner,
    Cookbook,
    CookbookRepository,
    ConvergeError,
    SKIP_COST_S,
)
from repro.simcore import SimContext


def make_cookbook():
    book = Cookbook("demo")

    @book.recipe("default")
    def default(r, node):
        r.package("python", io_work=20.0, cpu_work=5.0)
        r.package("condor", io_work=30.0)
        r.user("galaxy", io_work=1.0)
        r.directory("/opt/galaxy", io_work=0.5)
        r.service("condor", io_work=2.0)

    @book.recipe("extras")
    def extras(r, node):
        r.package("R", io_work=40.0, cpu_work=10.0)
        r.execute("setup-db", cpu_work=8.0, creates="db-initialized")
        r.restart("galaxy", io_work=2.0)

    return book


def converge(node, run_list, ctx=None, repo=None):
    ctx = ctx or SimContext(seed=0)
    repo = repo or CookbookRepository([make_cookbook()])
    runner = ChefRunner(ctx, repo)
    proc = ctx.sim.process(runner.converge(node, run_list))
    report = ctx.sim.run(until=proc)
    return ctx, report


def test_converge_applies_all_resources():
    node = ChefNode(name="n1")
    ctx, report = converge(node, ["demo::default"])
    assert "python" in node.packages
    assert "condor" in node.packages
    assert "galaxy" in node.users
    assert node.services["condor"] == "running"
    assert len(report.applied) == 5
    assert report.duration_s == pytest.approx(20 + 5 + 30 + 1 + 0.5 + 2)


def test_run_list_without_recipe_name_uses_default():
    node = ChefNode(name="n1")
    _, report = converge(node, ["demo"])
    assert len(report.applied) == 5


def test_second_converge_is_cheap_idempotent():
    ctx = SimContext(seed=0)
    repo = CookbookRepository([make_cookbook()])
    node = ChefNode(name="n1")
    _, first = converge(node, ["demo::default"], ctx=ctx, repo=repo)
    _, second = converge(node, ["demo::default"], ctx=ctx, repo=repo)
    assert len(second.applied) == 0
    assert len(second.skipped) == 5
    assert second.duration_s == pytest.approx(5 * SKIP_COST_S)
    assert second.duration_s < first.duration_s / 5


def test_preloaded_ami_packages_are_satisfied():
    node = ChefNode(name="n1", preloaded=frozenset({"python", "condor"}))
    _, report = converge(node, ["demo::default"])
    applied_names = [o.resource for o in report.applied]
    assert not any("python" in n for n in applied_names)
    assert not any("Package[condor]" == n for n in applied_names)
    # but the service and user still converge
    assert any("UserAccount[galaxy]" == n for n in applied_names)


def test_faster_node_converges_faster():
    slow = ChefNode(name="slow", cpu_factor=1.0, io_factor=1.0)
    fast = ChefNode(name="fast", cpu_factor=3.9, io_factor=2.05)
    _, r_slow = converge(slow, ["demo::default", "demo::extras"])
    _, r_fast = converge(fast, ["demo::default", "demo::extras"])
    assert r_fast.duration_s < r_slow.duration_s


def test_execute_with_creates_marker_skips_on_rerun():
    ctx = SimContext(seed=0)
    repo = CookbookRepository([make_cookbook()])
    node = ChefNode(name="n1")
    converge(node, ["demo::extras"], ctx=ctx, repo=repo)
    assert "db-initialized" in node.markers
    _, second = converge(node, ["demo::extras"], ctx=ctx, repo=repo)
    # execute skipped, but the restart always reruns
    actions = {o.resource: o.action for o in second.outcomes}
    assert actions["Execute[setup-db]"] == "skipped"
    assert actions["ServiceRestart[galaxy]"] == "applied"
    assert node.restarts["galaxy"] == 2


def test_only_if_guard():
    book = Cookbook("guarded")

    @book.recipe("default")
    def default(r, node):
        r.package("nfs-server", io_work=10.0, only_if=lambda n: "server" in n.name)

    node_a = ChefNode(name="server-1")
    node_b = ChefNode(name="worker-1")
    _, ra = converge(node_a, ["guarded"], repo=CookbookRepository([book]))
    _, rb = converge(node_b, ["guarded"], repo=CookbookRepository([book]))
    assert len(ra.applied) == 1
    assert len(rb.applied) == 0
    assert rb.outcomes[0].action == "guarded"


def test_template_rendering_and_idempotency():
    book = Cookbook("tmpl")

    @book.recipe("default")
    def default(r, node):
        r.template(
            "/etc/galaxy.conf",
            content="port={{port}}",
            variables={"port": 8080},
            io_work=1.0,
        )

    node = ChefNode(name="n1")
    repo = CookbookRepository([book])
    ctx = SimContext(seed=0)
    converge(node, ["tmpl"], ctx=ctx, repo=repo)
    assert node.files["/etc/galaxy.conf"]["content"] == "port=8080"
    _, second = converge(node, ["tmpl"], ctx=ctx, repo=repo)
    assert len(second.applied) == 0


def test_unknown_cookbook_and_recipe():
    repo = CookbookRepository([make_cookbook()])
    node = ChefNode(name="n1")
    ctx = SimContext(seed=0)
    runner = ChefRunner(ctx, repo)
    with pytest.raises(KeyError, match="unknown cookbook"):
        ctx.sim.run(until=ctx.sim.process(runner.converge(node, ["nope"])))
    ctx2 = SimContext(seed=0)
    runner2 = ChefRunner(ctx2, CookbookRepository([make_cookbook()]))
    with pytest.raises(KeyError, match="no recipe"):
        ctx2.sim.run(until=ctx2.sim.process(runner2.converge(node, ["demo::missing"])))


def test_duplicate_recipe_and_cookbook_rejected():
    book = make_cookbook()
    with pytest.raises(ValueError, match="duplicate recipe"):

        @book.recipe("default")
        def again(r, node):
            pass

    with pytest.raises(ValueError, match="duplicate cookbook"):
        CookbookRepository([make_cookbook(), make_cookbook()])


def test_total_work_reports_full_cost():
    book = make_cookbook()
    node = ChefNode(name="n1")
    io, cpu = book.get("default").total_work(node)
    assert io == pytest.approx(20 + 30 + 1 + 0.5 + 2)
    assert cpu == pytest.approx(5.0)


def test_failing_resource_raises_converge_error():
    book = Cookbook("bad")

    @book.recipe("default")
    def default(r, node):
        def boom(n):
            raise RuntimeError("disk full")

        r.execute("explode", cpu_work=1.0, effect=boom)

    node = ChefNode(name="n1")
    ctx = SimContext(seed=0)
    runner = ChefRunner(ctx, CookbookRepository([book]))
    proc = ctx.sim.process(runner.converge(node, ["bad"]))
    with pytest.raises(ConvergeError, match="disk full"):
        ctx.sim.run(until=proc)
