"""MyProxy credential repository."""

import pytest

from repro.security import (
    CertificateAuthority,
    MyProxyError,
    MyProxyServer,
)


def setup_server():
    ca = CertificateAuthority("GP-CA")
    server = MyProxyServer(ca=ca)
    cert = ca.issue_user_cert("boliu", now=0.0)
    server.store("boliu", cert, passphrase="s3cretpass", now=0.0)
    return ca, server


def test_store_and_retrieve_proxy():
    ca, server = setup_server()
    proxy = server.retrieve("boliu", "s3cretpass", now=10.0)
    assert proxy.is_proxy
    ca.verify(proxy, now=100.0)
    assert server.delegations == [(10.0, "boliu", proxy.serial)]


def test_bad_passphrase_rejected():
    _, server = setup_server()
    with pytest.raises(MyProxyError, match="passphrase"):
        server.retrieve("boliu", "wrong-pass", now=10.0)


def test_short_passphrase_rejected_at_store():
    ca = CertificateAuthority("GP-CA")
    server = MyProxyServer(ca=ca)
    cert = ca.issue_user_cert("u", now=0.0)
    with pytest.raises(MyProxyError, match="too short"):
        server.store("u", cert, passphrase="abc", now=0.0)


def test_unknown_user():
    _, server = setup_server()
    with pytest.raises(MyProxyError, match="no credential"):
        server.retrieve("ghost", "whatever123", now=0.0)


def test_delegation_lifetime_capped():
    ca = CertificateAuthority("GP-CA")
    server = MyProxyServer(ca=ca)
    cert = ca.issue_user_cert("u", now=0.0)
    server.store("u", cert, "passphrase", now=0.0, max_delegation_lifetime_s=100.0)
    proxy = server.retrieve("u", "passphrase", now=0.0, lifetime_s=10_000.0)
    assert proxy.lifetime_s <= 100.0


def test_revoked_credential_unusable():
    ca, server = setup_server()
    ca.revoke(server.credentials["boliu"].certificate)
    with pytest.raises(MyProxyError, match="unusable"):
        server.retrieve("boliu", "s3cretpass", now=10.0)


def test_destroy():
    _, server = setup_server()
    assert "boliu" in server
    server.destroy("boliu")
    assert "boliu" not in server
    with pytest.raises(MyProxyError):
        server.destroy("boliu")
