"""X.509 CA: issuance, verification, expiry, revocation, proxies."""

import dataclasses

import pytest

from repro.security import CertificateAuthority, CertificateError


def test_issue_and_verify_user_cert():
    ca = CertificateAuthority("GP-CA")
    cert = ca.issue_user_cert("boliu", now=0.0)
    assert cert.subject == "/CN=boliu"
    ca.verify(cert, now=100.0)
    assert ca.is_valid(cert, now=100.0)


def test_host_cert_subject():
    ca = CertificateAuthority("GP-CA")
    cert = ca.issue_host_cert("gridftp.example.com", now=0.0)
    assert cert.subject == "/CN=host/gridftp.example.com"


def test_expired_cert_fails():
    ca = CertificateAuthority("GP-CA", default_lifetime_s=100.0)
    cert = ca.issue_user_cert("u", now=0.0)
    with pytest.raises(CertificateError, match="expired"):
        ca.verify(cert, now=101.0)
    assert not ca.is_valid(cert, now=101.0)


def test_cert_not_valid_before_issue():
    ca = CertificateAuthority("GP-CA")
    cert = ca.issue_user_cert("u", now=50.0)
    with pytest.raises(CertificateError, match="expired"):
        ca.verify(cert, now=10.0)


def test_wrong_issuer_rejected():
    ca1 = CertificateAuthority("CA-1")
    ca2 = CertificateAuthority("CA-2")
    cert = ca1.issue_user_cert("u", now=0.0)
    with pytest.raises(CertificateError, match="issued by"):
        ca2.verify(cert, now=0.0)


def test_forged_certificate_rejected():
    ca = CertificateAuthority("GP-CA")
    cert = ca.issue_user_cert("u", now=0.0)
    forged = dataclasses.replace(cert, subject="/CN=admin")
    with pytest.raises(CertificateError, match="forged|signature"):
        ca.verify(forged, now=0.0)


def test_revocation():
    ca = CertificateAuthority("GP-CA")
    cert = ca.issue_user_cert("u", now=0.0)
    ca.revoke(cert)
    with pytest.raises(CertificateError, match="revoked"):
        ca.verify(cert, now=0.0)


def test_revoke_foreign_cert_rejected():
    ca1 = CertificateAuthority("CA-1")
    ca2 = CertificateAuthority("CA-2")
    cert = ca1.issue_user_cert("u", now=0.0)
    with pytest.raises(CertificateError):
        ca2.revoke(cert)


def test_proxy_delegation_short_lifetime():
    ca = CertificateAuthority("GP-CA")
    cert = ca.issue_user_cert("u", now=0.0)
    proxy = ca.delegate_proxy(cert, now=0.0, lifetime_s=3600.0)
    assert proxy.is_proxy
    assert proxy.subject == "/CN=u/proxy"
    assert proxy.lifetime_s == pytest.approx(3600.0)
    ca.verify(proxy, now=1800.0)
    with pytest.raises(CertificateError):
        ca.verify(proxy, now=4000.0)


def test_proxy_lifetime_capped_by_parent():
    ca = CertificateAuthority("GP-CA", default_lifetime_s=1000.0)
    cert = ca.issue_user_cert("u", now=0.0)
    proxy = ca.delegate_proxy(cert, now=500.0, lifetime_s=10_000.0)
    assert proxy.not_after <= cert.not_after


def test_cannot_delegate_from_expired_cert():
    ca = CertificateAuthority("GP-CA", default_lifetime_s=10.0)
    cert = ca.issue_user_cert("u", now=0.0)
    with pytest.raises(CertificateError):
        ca.delegate_proxy(cert, now=20.0)


def test_serials_unique():
    ca = CertificateAuthority("GP-CA")
    certs = [ca.issue_user_cert(f"u{i}", now=0.0) for i in range(10)]
    assert len({c.serial for c in certs}) == 10
