"""The three Globus Transfer Galaxy tools, run inside a deployed instance."""

import pytest

from repro.calibration import MB
from repro.core import (
    AFFY_CEL_PATH,
    CVRG_DATA_ENDPOINT,
    FOUR_CEL_PATH,
    CloudTestbed,
    usecase_topology,
)
from repro.galaxy import JobState
from repro.provision import GlobusProvision
from repro.tools_globus import (
    GET_DATA_TOOL_ID,
    GO_TRANSFER_TOOL_ID,
    SEND_DATA_TOOL_ID,
)


@pytest.fixture
def world():
    bed = CloudTestbed(seed=6)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("c1.medium", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    app = gpi.deployment.galaxy
    history = app.create_history("boliu", "transfers")
    return bed, app, history


def run_job(bed, app, job):
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    return job


def test_get_data_manifests_dataset_in_history(world):
    bed, app, history = world
    job = app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    )
    run_job(bed, app, job)
    assert job.state == JobState.OK
    ds = job.outputs["output"]
    assert ds.name == "fourCelFileSamples.zip"
    assert ds.size == pytest.approx(10.7 * MB, rel=0.01)
    # real payload arrived: it parses as a CEL archive
    from repro.crdata import CelArchive

    arch = CelArchive.from_bytes(app.fs.read(ds.file_path))
    assert arch.n_arrays == 4
    # the user got an email from Globus Online
    assert any("SUCCEEDED" in m.subject for m in bed.go.emails)


def test_get_data_missing_file_errors_in_history(world):
    bed, app, history = world
    job = app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": "/home/boliu/missing.zip"},
    )
    run_job(bed, app, job)
    assert job.state == JobState.ERROR
    assert "missing.zip" in job.stderr
    panel = app.history_panel(history)
    assert any("[error]" in line for line in panel)


def test_get_data_deadline_exceeded_fails_job(world):
    bed, app, history = world
    job = app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={
            "endpoint": CVRG_DATA_ENDPOINT,
            "path": AFFY_CEL_PATH,          # 190.3 MB
            "deadline_minutes": 0.1,        # 6 seconds: hopeless
        },
    )
    run_job(bed, app, job)
    assert job.state == JobState.ERROR
    assert "deadline" in job.stderr


def test_user_without_go_account_gets_clear_error(world):
    bed, app, history = world
    app.create_user("stranger")
    hist2 = app.create_history("stranger")
    job = app.run_tool(
        "stranger", hist2, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    )
    run_job(bed, app, job)
    assert job.state == JobState.ERROR
    assert "no linked Globus Online account" in job.stderr


def test_send_data_pushes_dataset_to_laptop(world):
    bed, app, history = world
    ds = app.upload_data(history, "results.txt", data=b"top table contents", ext="txt")
    job = app.run_tool(
        "boliu", history, SEND_DATA_TOOL_ID,
        params={"endpoint": "boliu#laptop", "path": "/home/boliu/results.txt"},
        inputs=[ds],
    )
    run_job(bed, app, job)
    assert job.state == JobState.OK
    assert bed.laptop_fs.read("/home/boliu/results.txt") == b"top table contents"
    report = app.fs.read(job.outputs["output"].file_path).decode()
    assert "SUCCEEDED" in report


def test_go_transfer_third_party_between_remote_endpoints(world):
    bed, app, history = world
    bed.laptop_fs.write("/home/boliu/field-data.csv", data=b"a,b\n1,2\n")
    job = app.run_tool(
        "boliu", history, GO_TRANSFER_TOOL_ID,
        params={
            "source_endpoint": "boliu#laptop",
            "source_path": "/home/boliu/field-data.csv",
            "dest_endpoint": CVRG_DATA_ENDPOINT,
            "dest_path": "/home/boliu/field-data.csv",
        },
    )
    run_job(bed, app, job)
    assert job.state == JobState.OK
    assert bed.cvrg_fs.read("/home/boliu/field-data.csv") == b"a,b\n1,2\n"
    report = app.fs.read(job.outputs["output"].file_path).decode()
    assert "task_id" in report


def test_go_transfer_into_galaxy_manifests_payload(world):
    bed, app, history = world
    job2 = app.run_tool(
        "boliu", history, GO_TRANSFER_TOOL_ID,
        params={
            "source_endpoint": CVRG_DATA_ENDPOINT,
            "source_path": FOUR_CEL_PATH,
            "dest_endpoint": "cvrg#galaxy",
            "dest_path": "/home/galaxy/database/files/incoming.zip",
        },
    )
    run_job(bed, app, job2)
    assert job2.state == JobState.OK
    # payload landed on the shared filesystem of the deployment
    assert app.fs.stat("/home/galaxy/database/files/incoming.zip").size > 0


def test_transfer_tools_run_on_galaxy_server_not_condor(world):
    bed, app, history = world
    job = app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    )
    run_job(bed, app, job)
    assert job.machine == "galaxy-server"
