"""ASCII table rendering."""

import pytest

from repro.reporting import Comparison, render_series, render_table


def test_render_table_alignment():
    out = render_table(["a", "long header"], [["x", 1], ["yy", 22]])
    lines = out.splitlines()
    assert lines[0].startswith("+")
    assert "| a  | long header |" in out
    # all rows same width
    assert len({len(ln) for ln in lines}) == 1


def test_render_table_title():
    out = render_table(["h"], [["v"]], title="My title")
    assert out.splitlines()[0] == "My title"


def test_render_series():
    out = render_series("x", [1, 2], {"s1": [10, 20], "s2": [30, 40]})
    assert "| 1 | 10 | 30 |" in out
    assert "| 2 | 20 | 40 |" in out


def test_comparison_render_and_ratios():
    cmp = Comparison("T")
    cmp.add("metric1", 10.0, 11.0)
    cmp.add("metric2", None, 5.0)
    cmp.add("metric3", "fast", "fast")
    out = cmp.render()
    assert "metric1" in out and "11" in out
    ratios = cmp.ratios()
    assert ratios["metric1"] == pytest.approx(1.1)
    assert ratios["metric2"] is None
    assert ratios["metric3"] is None
