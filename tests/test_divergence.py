"""First-divergence walking and counterfactual comparison tables."""

from repro.reporting import (
    Divergence,
    comparison_rows,
    first_divergence,
    flatten_numeric,
    render_comparison,
    render_divergence,
)


def test_equal_documents_have_no_divergence():
    doc = {"a": [1, 2, {"b": "x"}], "c": None}
    assert first_divergence(doc, doc) is None
    assert first_divergence({}, {}) is None
    assert first_divergence([], []) is None


def test_scalar_mismatch_names_the_path():
    div = first_divergence({"a": {"b": 1}}, {"a": {"b": 2}})
    assert div == Divergence("$.a.b", 1, 2)


def test_dict_key_absence_both_directions():
    assert first_divergence({"a": 1}, {}) == Divergence("$.a", 1, "<absent>")
    assert first_divergence({}, {"a": 1}) == Divergence("$.a", "<absent>", 1)


def test_dict_walk_is_sorted_key_order():
    # both 'a' and 'z' differ; the report must deterministically pick 'a'
    div = first_divergence({"z": 1, "a": 1}, {"z": 2, "a": 2})
    assert div.path == "$.a"


def test_list_index_and_length_mismatch():
    assert first_divergence([1, 2], [1, 3]).path == "$[1]"
    assert first_divergence([1, 2, 3], [1, 2]) == Divergence("$[2]", 3, "<absent>")
    assert first_divergence([1], [1, 9]) == Divergence("$[1]", "<absent>", 9)


def test_type_mismatch_diverges():
    assert first_divergence({"a": [1]}, {"a": {"x": 1}}).path == "$.a"
    assert first_divergence("1", 1).path == "$"


def test_int_float_interchangeable_but_bool_is_not():
    assert first_divergence(1, 1.0) is None
    assert first_divergence(True, 1) == Divergence("$", True, 1)
    assert first_divergence(False, 0.0) == Divergence("$", False, 0.0)


def test_render_divergence_truncates_large_values():
    div = Divergence("$.x", "y" * 500, {"k": 1})
    out = render_divergence(div)
    assert "$.x" in out
    assert "dict of 1 entries" in out
    assert all(len(line) < 160 for line in out.splitlines())


def test_flatten_numeric():
    flat = flatten_numeric(
        {"a": 1, "b": {"c": 2.5}, "d": [3, "s"], "e": True, "f": None}
    )
    assert flat == {"a": 1.0, "b.c": 2.5, "d[0]": 3.0}


def test_comparison_rows_changed_and_headlines():
    base = {"sim_seconds": 100.0, "cost_usd": 2.0, "noise": 5}
    new = {"sim_seconds": 80.0, "cost_usd": 2.0, "noise": 5}
    rows = comparison_rows(base, new)
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["sim_seconds"]["delta"] == -20.0
    assert by_metric["sim_seconds"]["pct"] == -20.0
    # unchanged headline still shown; unchanged non-headline dropped
    assert by_metric["cost_usd"]["delta"] == 0.0
    assert "noise" not in by_metric

    rows = comparison_rows(base, new, include_unchanged_headlines=False)
    assert [r["metric"] for r in rows] == ["sim_seconds"]


def test_comparison_rows_handles_absent_and_zero_baseline():
    rows = comparison_rows({"only_base": 1.0}, {"only_new": 2.0, "z": 0.0})
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["only_base"]["delta"] is None
    assert by_metric["only_new"]["pct"] is None
    # zero baseline: delta defined, percentage not
    rows = comparison_rows({"x": 0.0}, {"x": 5.0})
    assert rows[0]["delta"] == 5.0
    assert rows[0]["pct"] is None


def test_render_comparison():
    out = render_comparison(
        comparison_rows({"sim_seconds": 100.0}, {"sim_seconds": 80.0})
    )
    assert "counterfactual comparison" in out
    assert "-20" in out and "-20.0%" in out
    assert render_comparison([]) == "(no numeric metrics to compare)"
