"""The Sec. V-A use case end-to-end, with the paper's anchors as shape checks."""

import pytest

from repro.core import CloudTestbed, run_usecase


def test_usecase_small_cluster_matches_paper_anchor():
    """Steps 3+4 on an m1.small cluster: paper reports 10.7 minutes."""
    res = run_usecase(scale_up_with=None, seed=1)
    assert res.steps34_minutes == pytest.approx(10.7, rel=0.08)
    assert res.deploy_minutes == pytest.approx(8.8, rel=0.08)
    assert res.step3_job.machine == "simple-condor-wn1"
    assert res.step4_job.machine == "simple-condor-wn1"


def test_usecase_scale_up_cuts_time_like_paper():
    """Adding a c1.medium worker: paper reports 10.7 -> 6.9 minutes."""
    baseline = run_usecase(scale_up_with=None, seed=1)
    scaled = run_usecase(scale_up_with="c1.medium", seed=1)
    assert scaled.steps34_minutes < baseline.steps34_minutes * 0.75
    # the big step-4 job migrated to the new faster node
    assert scaled.step4_job.machine == "simple-condor-wn2"
    assert scaled.update_seconds is not None
    assert scaled.update_seconds < 10 * 60  # "within minutes"


def test_usecase_outputs_are_real_statistics():
    res = run_usecase(scale_up_with=None, run_large=False, seed=2)
    lines = res.top_table_head.splitlines()
    assert lines[0].startswith("probe\tlogFC")
    # top probe is strongly significant on the planted data
    first = lines[1].split("\t")
    assert abs(float(first[1])) > 1.0       # |logFC|
    assert float(first[4]) < 1e-6           # p-value
    assert any("fourCelFileSamples.zip [ok]" in s for s in res.history_panel)


def test_usecase_transfer_times_scale_with_size():
    res = run_usecase(scale_up_with=None, seed=3)
    assert res.transfer_large_seconds > res.transfer_small_seconds
    # 190.3 MB at tens of Mbit/s: well under 10 minutes
    assert res.transfer_large_seconds < 600


def test_usecase_cost_anchor_small():
    bed = CloudTestbed(seed=4)
    res = run_usecase(bed=bed, scale_up_with=None)
    cost = res.steps34_cost_usd(bed)
    assert cost == pytest.approx(0.007, rel=0.15)  # paper: 0.007 USD
