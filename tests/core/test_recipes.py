"""The Galaxy cookbooks: structure and work calibration."""

import pytest

from repro import calibration
from repro.chef import ChefNode
from repro.core import GALAXY_HEAD_RUN_LIST, build_repository
from repro.cloud.ec2 import GP_PUBLIC_AMI_SOFTWARE


def test_repository_has_all_recipes():
    repo = build_repository()
    for item in [
        "globus::common", "globus::nfs-server", "globus::nis-server",
        "globus::gridftp", "globus::myproxy", "globus::condor-head",
        "globus::condor-worker", "galaxy::galaxy-globus-common",
        "galaxy::galaxy-globus", "galaxy::galaxy-globus-crdata",
    ]:
        assert repo.resolve(item) is not None


def test_head_runlist_work_matches_calibration():
    """The Fig. 10 deployment anchor: non-preloaded converge work on the
    GP public AMI must sum to the calibrated totals."""
    repo = build_repository()
    node = ChefNode(name="head", preloaded=GP_PUBLIC_AMI_SOFTWARE)
    io_total, cpu_total = 0.0, 0.0
    for item in GALAXY_HEAD_RUN_LIST:
        for resource in repo.resolve(item).compile(node):
            if resource.is_satisfied(node):
                continue  # preloaded package: verification only
            io_total += resource.io_work
            cpu_total += resource.cpu_work
            resource.apply(node)
    assert io_total == pytest.approx(calibration.GALAXY_RUNLIST_IO_WORK, rel=0.02)
    assert cpu_total == pytest.approx(calibration.GALAXY_RUNLIST_CPU_WORK, rel=0.02)


def test_crdata_recipe_installs_tool_requirements():
    """Condor matching depends on the recipe providing what tools require."""
    from repro.crdata import CRDATA_REQUIREMENTS

    repo = build_repository()
    node = ChefNode(name="worker")
    for resource in repo.resolve("galaxy::galaxy-globus-crdata").compile(node):
        if not resource.is_satisfied(node):
            resource.apply(node)
    assert set(CRDATA_REQUIREMENTS) <= node.installed_software


def test_galaxy_recipe_configures_endpoint_from_attributes():
    repo = build_repository()
    node = ChefNode(name="head")
    node.attributes.set("normal", {"go_endpoint": "cvrg#galaxy"})
    for resource in repo.resolve("galaxy::galaxy-globus").compile(node):
        if not resource.is_satisfied(node):
            resource.apply(node)
    assert "cvrg#galaxy" in node.files["/home/galaxy/universe_wsgi.ini"]["content"]
    assert node.restarts.get("galaxy") == 1


def test_common_recipe_is_idempotent_modulo_restarts():
    repo = build_repository()
    node = ChefNode(name="n")
    recipe = repo.resolve("globus::common")
    for resource in recipe.compile(node):
        resource.apply(node)
    unsatisfied = [
        r for r in recipe.compile(node) if not r.is_satisfied(node)
    ]
    assert unsatisfied == []
