"""The elastic autoscaler extension (the paper's future-work feature)."""

import pytest

from repro.core import CloudTestbed, ElasticScaler, ScalerPolicy, usecase_topology
from repro.galaxy import JobState
from repro.provision import GlobusProvision
from repro.workloads import make_expression_matrix_bytes


@pytest.fixture
def world():
    bed = CloudTestbed(seed=8)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return bed, gp, gpi


def submit_burst(bed, app, history, n, work_tool="crdata_matrixTTest"):
    """Heavy backlog: each job ~200 s of small-instance compute."""
    jobs = []
    data = make_expression_matrix_bytes(n_probes=2000)
    for i in range(n):
        ds = app.upload_data(history, f"m{i}.tsv", data=data,
                             size=500 * 1024 * 1024, ext="tabular")
        jobs.append(app.run_tool("boliu", history, work_tool, inputs=[ds]))
    return jobs


def test_scaler_adds_workers_under_backlog(world):
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu")
    policy = ScalerPolicy(
        check_interval_s=30.0, scale_up_queue_depth=2, max_workers=3,
        worker_instance_type="c1.medium",
    )
    scaler = ElasticScaler(gp, gpi.id, policy=policy)
    scaler.start()
    jobs = submit_burst(bed, app, history, n=8)
    bed.ctx.sim.run(until=bed.ctx.sim.all_of([app.jobs.when_done(j) for j in jobs]))
    scaler.stop()
    assert any(e.action == "scale-up" for e in scaler.events)
    assert len(gpi.deployment.worker_nodes("simple")) >= 2
    assert all(j.state == JobState.OK for j in jobs)
    # some jobs really ran on the added capacity
    machines = {j.machine for j in jobs}
    assert any(m != "simple-condor-wn1" for m in machines)


def test_scaler_shrinks_when_idle(world):
    bed, gp, gpi = world
    policy = ScalerPolicy(
        check_interval_s=30.0, scale_down_idle_checks=2, min_workers=1,
    )
    # grow manually to two workers first
    from repro.provision import with_extra_worker

    def grow():
        yield from gp.update(gpi.id, with_extra_worker(gpi.topology, "simple", "c1.medium"))

    bed.ctx.sim.run(until=bed.ctx.sim.process(grow()))
    assert len(gpi.deployment.worker_nodes("simple")) == 2

    scaler = ElasticScaler(gp, gpi.id, policy=policy)
    scaler.start()
    bed.ctx.sim.run(until=bed.ctx.now + 600.0)
    scaler.stop()
    assert any(e.action == "scale-down" for e in scaler.events)
    assert len(gpi.deployment.worker_nodes("simple")) == 1


def test_scaler_respects_max_workers(world):
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu")
    policy = ScalerPolicy(
        check_interval_s=30.0, scale_up_queue_depth=1, max_workers=2,
    )
    scaler = ElasticScaler(gp, gpi.id, policy=policy)
    scaler.start()
    jobs = submit_burst(bed, app, history, n=10)
    bed.ctx.sim.run(until=bed.ctx.sim.all_of([app.jobs.when_done(j) for j in jobs]))
    scaler.stop()
    assert len(gpi.deployment.worker_nodes("simple")) <= 2


def test_scaler_stop_halts_loop(world):
    bed, gp, gpi = world
    scaler = ElasticScaler(gp, gpi.id)
    scaler.start()
    scaler.stop()
    before = len(scaler.events)
    bed.ctx.sim.run(until=bed.ctx.now + 600.0)
    assert len(scaler.events) == before
