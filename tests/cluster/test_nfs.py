"""SimFilesystem, NFS exports, mount tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import FilesystemError, MountTable, NFSServer, SimFilesystem


def test_write_read_roundtrip_with_content():
    fs = SimFilesystem()
    fs.write("/data/a.txt", data=b"hello")
    assert fs.read("/data/a.txt") == b"hello"
    assert fs.stat("/data/a.txt").size == 5
    assert fs.isdir("/data")


def test_bulk_file_has_size_but_no_bytes():
    fs = SimFilesystem()
    fs.write("/data/big.zip", size=190_300_000)
    assert fs.stat("/data/big.zip").size == 190_300_000
    with pytest.raises(FilesystemError, match="bulk"):
        fs.read("/data/big.zip")


def test_relative_path_rejected():
    fs = SimFilesystem()
    with pytest.raises(FilesystemError, match="absolute"):
        fs.write("data/a", data=b"x")


def test_mkdirs_idempotent_and_file_conflicts():
    fs = SimFilesystem()
    fs.mkdirs("/a/b/c")
    fs.mkdirs("/a/b/c")
    fs.write("/a/b/c/file", data=b"x")
    with pytest.raises(FilesystemError):
        fs.mkdirs("/a/b/c/file")
    with pytest.raises(FilesystemError, match="directory"):
        fs.write("/a/b", data=b"x")


def test_overwrite_replaces():
    fs = SimFilesystem()
    fs.write("/f", data=b"one")
    fs.write("/f", data=b"two!")
    assert fs.read("/f") == b"two!"
    assert fs.stat("/f").size == 4


def test_remove_file_and_nonempty_dir():
    fs = SimFilesystem()
    fs.write("/d/f", data=b"x")
    with pytest.raises(FilesystemError, match="not empty"):
        fs.remove("/d")
    fs.remove("/d/f")
    fs.remove("/d")
    assert not fs.exists("/d")
    with pytest.raises(FilesystemError):
        fs.remove("/d/f")


def test_rename_preserves_content():
    fs = SimFilesystem()
    fs.write("/a/x", data=b"payload")
    fs.rename("/a/x", "/b/y")
    assert not fs.exists("/a/x")
    assert fs.read("/b/y") == b"payload"


def test_listdir_and_walk():
    fs = SimFilesystem()
    fs.write("/h/u1/d1.dat", size=10)
    fs.write("/h/u1/d2.dat", size=20)
    fs.write("/h/u2/d3.dat", size=30)
    assert fs.listdir("/h") == ["u1", "u2"]
    assert fs.listdir("/h/u1") == ["d1.dat", "d2.dat"]
    assert fs.total_size("/h") == 60
    assert fs.total_size("/h/u1") == 30
    with pytest.raises(FilesystemError):
        fs.listdir("/nope")


def test_nfs_mount_shares_one_namespace():
    server_fs = SimFilesystem("server")
    server = NFSServer(fs=server_fs, export="/export/home")
    node_a = MountTable(SimFilesystem("a"))
    node_b = MountTable(SimFilesystem("b"))
    node_a.mount(server, at="/home")
    node_b.mount(server, at="/home")
    node_a.write("/home/galaxy/dataset_1.dat", data=b"shared bytes")
    # visible on the other node and on the server under the export
    assert node_b.read("/home/galaxy/dataset_1.dat") == b"shared bytes"
    assert server_fs.read("/export/home/galaxy/dataset_1.dat") == b"shared bytes"


def test_mount_resolution_prefers_longest_prefix():
    server1 = NFSServer(fs=SimFilesystem(), export="/e1")
    server2 = NFSServer(fs=SimFilesystem(), export="/e2")
    node = MountTable(SimFilesystem())
    node.mount(server1, at="/data")
    node.mount(server2, at="/data/special")
    node.write("/data/a", data=b"1")
    node.write("/data/special/b", data=b"2")
    assert server1.fs.exists("/e1/a")
    assert server2.fs.exists("/e2/b")
    assert not server1.fs.exists("/e1/special/b")


def test_local_paths_stay_local():
    node = MountTable(SimFilesystem("local"))
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node.mount(server, at="/shared")
    node.write("/tmp/scratch", data=b"local")
    assert node.local.exists("/tmp/scratch")
    assert not server.fs.exists("/x/tmp/scratch")


def test_umount_and_busy_mount_point():
    node = MountTable(SimFilesystem())
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node.mount(server, at="/mnt")
    with pytest.raises(FilesystemError, match="busy"):
        node.mount(server, at="/mnt")
    node.umount("/mnt")
    with pytest.raises(FilesystemError):
        node.umount("/mnt")


_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@given(st.lists(st.tuples(_names, _names, st.integers(1, 1000)), min_size=1, max_size=20))
def test_property_total_size_is_sum_of_live_files(entries):
    fs = SimFilesystem()
    expected: dict[str, int] = {}
    for d, f, size in entries:
        path = f"/{d}/{f}"
        fs.write(path, size=size)
        expected[path] = size
    assert fs.total_size() == sum(expected.values())
    for path in expected:
        assert fs.isfile(path)


@given(st.lists(_names, min_size=1, max_size=6))
def test_property_mkdirs_makes_every_prefix_a_dir(parts):
    fs = SimFilesystem()
    path = "/" + "/".join(parts)
    fs.mkdirs(path)
    cur = ""
    for p in parts:
        cur += "/" + p
        assert fs.isdir(cur)


# ---------------------------------------------------------------------------
# Bulk-file content tokens (regression: the old scheme was `bulk:{size}`,
# so any two equal-size bulk files compared equal and checksum-level sync
# silently skipped real transfers)
# ---------------------------------------------------------------------------


def test_distinct_same_size_bulk_files_get_distinct_checksums():
    fs = SimFilesystem()
    a = fs.write("/data/a.zip", size=1000)
    b = fs.write("/data/b.zip", size=1000)
    assert a.checksum != b.checksum
    assert a.checksum.startswith("bulk:")


def test_rewritten_same_size_bulk_file_mints_a_fresh_token():
    fs = SimFilesystem()
    first = fs.write("/data/a.zip", size=1000, mtime=1.0).checksum
    second = fs.write("/data/a.zip", size=1000, mtime=2.0).checksum
    assert first != second


def test_mover_propagated_checksum_survives_the_copy():
    src = SimFilesystem("src")
    dst = SimFilesystem("dst")
    node = src.write("/a.zip", size=1000, mtime=1.0)
    copy = dst.write("/b.zip", size=node.size, mtime=5.0, checksum=node.checksum)
    assert copy.checksum == node.checksum


def test_content_files_still_hash_their_bytes():
    fs = SimFilesystem()
    a = fs.write("/a.txt", data=b"same bytes")
    b = fs.write("/b.txt", data=b"same bytes")
    assert a.checksum == b.checksum  # true content equality still dedups


# ---------------------------------------------------------------------------
# Mounts at / and longest-prefix resolution (regression: a mount at "/"
# never matched because the prefix check degenerated to startswith("//"))
# ---------------------------------------------------------------------------


def test_mount_at_root_translates_every_path():
    server = NFSServer(fs=SimFilesystem("srv"), export="/srv")
    node = MountTable(SimFilesystem())
    m = node.mount(server, at="/")
    assert m.translate("/") == "/srv"
    assert m.translate("/data/x") == "/srv/data/x"
    node.write("/data/x", data=b"rooted")
    assert server.fs.read("/srv/data/x") == b"rooted"
    assert node.read("/data/x") == b"rooted"


def test_root_mount_loses_to_longer_prefixes():
    root_srv = NFSServer(fs=SimFilesystem(), export="/root-export")
    data_srv = NFSServer(fs=SimFilesystem(), export="/data-export")
    node = MountTable(SimFilesystem())
    node.mount(root_srv, at="/")
    node.mount(data_srv, at="/data")
    node.write("/data/f", data=b"deep")
    node.write("/other/f", data=b"shallow")
    assert data_srv.fs.exists("/data-export/f")
    assert root_srv.fs.exists("/root-export/other/f")
    assert not root_srv.fs.exists("/root-export/data/f")


def test_mount_component_boundary_is_respected():
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node = MountTable(SimFilesystem())
    node.mount(server, at="/home")
    node.write("/homes/f", data=b"local")  # /homes is NOT under /home
    assert node.local.exists("/homes/f")
    assert not server.fs.exists("/x/f")
    with pytest.raises(FilesystemError, match="not under mount"):
        node.mounts[0].translate("/homes/f")


# ---------------------------------------------------------------------------
# Directory ownership (regression: mkdirs silently dropped `owner`)
# ---------------------------------------------------------------------------


def test_mkdirs_records_owner_of_created_directories():
    fs = SimFilesystem()
    fs.mkdirs("/home/boliu", owner="boliu")
    assert fs.dir_owner("/home/boliu") == "boliu"
    assert fs.dir_owner("/home") == "boliu"
    assert fs.dir_owner("/") == "root"


def test_mkdirs_over_existing_tree_does_not_chown():
    fs = SimFilesystem()
    fs.mkdirs("/home/boliu", owner="boliu")
    fs.mkdirs("/home/boliu/sub", owner="galaxy")
    assert fs.dir_owner("/home/boliu") == "boliu"
    assert fs.dir_owner("/home/boliu/sub") == "galaxy"


def test_dir_owner_of_missing_directory_raises():
    fs = SimFilesystem()
    with pytest.raises(FilesystemError, match="no such directory"):
        fs.dir_owner("/nope")


def test_removed_directory_forgets_its_owner():
    fs = SimFilesystem()
    fs.mkdirs("/scratch", owner="boliu")
    fs.remove("/scratch")
    fs.mkdirs("/scratch", owner="galaxy")
    assert fs.dir_owner("/scratch") == "galaxy"


# ---------------------------------------------------------------------------
# MountTable edge cases the storage backends rely on
# ---------------------------------------------------------------------------


def test_umount_while_resolving_falls_back_to_local():
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node = MountTable(SimFilesystem())
    node.mount(server, at="/mnt")
    node.write("/mnt/f", data=b"remote")
    node.umount("/mnt")
    # the same path now resolves locally: the remote file is invisible
    assert not node.exists("/mnt/f")
    assert server.fs.read("/x/f") == b"remote"
    node.mount(server, at="/mnt")
    assert node.read("/mnt/f") == b"remote"


def test_remove_of_mount_point_raises_busy_not_export_deletion():
    server = NFSServer(fs=SimFilesystem(), export="/export/home")
    node = MountTable(SimFilesystem())
    node.mount(server, at="/home")
    with pytest.raises(FilesystemError, match="busy"):
        node.remove("/home")
    # the server's export root must survive the attempt
    assert server.fs.isdir("/export/home")
    assert node.is_mount_point("/home")


def test_rename_across_mount_boundary_copies_and_preserves_token():
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node = MountTable(SimFilesystem())
    node.mount(server, at="/shared")
    bulk = node.write("/tmp/big.zip", size=4096, mtime=3.0)
    node.rename("/tmp/big.zip", "/shared/big.zip")
    assert not node.local.exists("/tmp/big.zip")
    moved = server.fs.stat("/x/big.zip")
    assert moved.size == 4096
    assert moved.checksum == bulk.checksum  # EXDEV copy keeps the token


def test_rename_within_one_mount_delegates_to_the_backing_fs():
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node = MountTable(SimFilesystem())
    node.mount(server, at="/shared")
    node.write("/shared/a", data=b"payload")
    node.rename("/shared/a", "/shared/sub/b")
    assert server.fs.read("/x/sub/b") == b"payload"
    assert not server.fs.exists("/x/a")
