"""SimFilesystem, NFS exports, mount tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import FilesystemError, MountTable, NFSServer, SimFilesystem


def test_write_read_roundtrip_with_content():
    fs = SimFilesystem()
    fs.write("/data/a.txt", data=b"hello")
    assert fs.read("/data/a.txt") == b"hello"
    assert fs.stat("/data/a.txt").size == 5
    assert fs.isdir("/data")


def test_bulk_file_has_size_but_no_bytes():
    fs = SimFilesystem()
    fs.write("/data/big.zip", size=190_300_000)
    assert fs.stat("/data/big.zip").size == 190_300_000
    with pytest.raises(FilesystemError, match="bulk"):
        fs.read("/data/big.zip")


def test_relative_path_rejected():
    fs = SimFilesystem()
    with pytest.raises(FilesystemError, match="absolute"):
        fs.write("data/a", data=b"x")


def test_mkdirs_idempotent_and_file_conflicts():
    fs = SimFilesystem()
    fs.mkdirs("/a/b/c")
    fs.mkdirs("/a/b/c")
    fs.write("/a/b/c/file", data=b"x")
    with pytest.raises(FilesystemError):
        fs.mkdirs("/a/b/c/file")
    with pytest.raises(FilesystemError, match="directory"):
        fs.write("/a/b", data=b"x")


def test_overwrite_replaces():
    fs = SimFilesystem()
    fs.write("/f", data=b"one")
    fs.write("/f", data=b"two!")
    assert fs.read("/f") == b"two!"
    assert fs.stat("/f").size == 4


def test_remove_file_and_nonempty_dir():
    fs = SimFilesystem()
    fs.write("/d/f", data=b"x")
    with pytest.raises(FilesystemError, match="not empty"):
        fs.remove("/d")
    fs.remove("/d/f")
    fs.remove("/d")
    assert not fs.exists("/d")
    with pytest.raises(FilesystemError):
        fs.remove("/d/f")


def test_rename_preserves_content():
    fs = SimFilesystem()
    fs.write("/a/x", data=b"payload")
    fs.rename("/a/x", "/b/y")
    assert not fs.exists("/a/x")
    assert fs.read("/b/y") == b"payload"


def test_listdir_and_walk():
    fs = SimFilesystem()
    fs.write("/h/u1/d1.dat", size=10)
    fs.write("/h/u1/d2.dat", size=20)
    fs.write("/h/u2/d3.dat", size=30)
    assert fs.listdir("/h") == ["u1", "u2"]
    assert fs.listdir("/h/u1") == ["d1.dat", "d2.dat"]
    assert fs.total_size("/h") == 60
    assert fs.total_size("/h/u1") == 30
    with pytest.raises(FilesystemError):
        fs.listdir("/nope")


def test_nfs_mount_shares_one_namespace():
    server_fs = SimFilesystem("server")
    server = NFSServer(fs=server_fs, export="/export/home")
    node_a = MountTable(SimFilesystem("a"))
    node_b = MountTable(SimFilesystem("b"))
    node_a.mount(server, at="/home")
    node_b.mount(server, at="/home")
    node_a.write("/home/galaxy/dataset_1.dat", data=b"shared bytes")
    # visible on the other node and on the server under the export
    assert node_b.read("/home/galaxy/dataset_1.dat") == b"shared bytes"
    assert server_fs.read("/export/home/galaxy/dataset_1.dat") == b"shared bytes"


def test_mount_resolution_prefers_longest_prefix():
    server1 = NFSServer(fs=SimFilesystem(), export="/e1")
    server2 = NFSServer(fs=SimFilesystem(), export="/e2")
    node = MountTable(SimFilesystem())
    node.mount(server1, at="/data")
    node.mount(server2, at="/data/special")
    node.write("/data/a", data=b"1")
    node.write("/data/special/b", data=b"2")
    assert server1.fs.exists("/e1/a")
    assert server2.fs.exists("/e2/b")
    assert not server1.fs.exists("/e1/special/b")


def test_local_paths_stay_local():
    node = MountTable(SimFilesystem("local"))
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node.mount(server, at="/shared")
    node.write("/tmp/scratch", data=b"local")
    assert node.local.exists("/tmp/scratch")
    assert not server.fs.exists("/x/tmp/scratch")


def test_umount_and_busy_mount_point():
    node = MountTable(SimFilesystem())
    server = NFSServer(fs=SimFilesystem(), export="/x")
    node.mount(server, at="/mnt")
    with pytest.raises(FilesystemError, match="busy"):
        node.mount(server, at="/mnt")
    node.umount("/mnt")
    with pytest.raises(FilesystemError):
        node.umount("/mnt")


_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


@given(st.lists(st.tuples(_names, _names, st.integers(1, 1000)), min_size=1, max_size=20))
def test_property_total_size_is_sum_of_live_files(entries):
    fs = SimFilesystem()
    expected: dict[str, int] = {}
    for d, f, size in entries:
        path = f"/{d}/{f}"
        fs.write(path, size=size)
        expected[path] = size
    assert fs.total_size() == sum(expected.values())
    for path in expected:
        assert fs.isfile(path)


@given(st.lists(_names, min_size=1, max_size=6))
def test_property_mkdirs_makes_every_prefix_a_dir(parts):
    fs = SimFilesystem()
    path = "/" + "/".join(parts)
    fs.mkdirs(path)
    cur = ""
    for p in parts:
        cur += "/" + p
        assert fs.isdir(cur)
