"""NIS domain and node bindings."""

import pytest

from repro.cluster import NISBinding, NISDomain, NISError


def test_add_and_lookup_user():
    dom = NISDomain("simple")
    u = dom.add_user("boliu")
    assert u.uid >= 1000
    assert u.home == "/home/boliu"
    assert dom.lookup("boliu") is u
    assert "boliu" in dom


def test_uids_unique_and_increasing():
    dom = NISDomain("simple")
    u1 = dom.add_user("user1")
    u2 = dom.add_user("user2")
    assert u2.uid == u1.uid + 1


def test_duplicate_user_rejected():
    dom = NISDomain("simple")
    dom.add_user("x")
    with pytest.raises(NISError):
        dom.add_user("x")


def test_groups_membership():
    dom = NISDomain("simple")
    dom.add_group("galaxyusers")
    dom.add_user("a", groups=("users", "galaxyusers"))
    assert "a" in dom.groups["galaxyusers"].members
    with pytest.raises(NISError, match="no such group"):
        dom.add_user("b", groups=("nope",))


def test_remove_user_clears_group_membership():
    dom = NISDomain("simple")
    dom.add_user("a")
    dom.remove_user("a")
    assert "a" not in dom
    assert "a" not in dom.groups["users"].members
    with pytest.raises(NISError):
        dom.remove_user("a")


def test_binding_resolves_domain_users():
    dom = NISDomain("simple")
    dom.add_user("remote")
    binding = NISBinding()
    assert "remote" not in binding
    binding.bind(dom)
    assert "remote" in binding
    assert binding.lookup("remote").name == "remote"


def test_local_accounts_shadow_nis():
    dom = NISDomain("simple")
    dom.add_user("galaxy", home="/home/galaxy")
    binding = NISBinding(dom)
    binding.add_local("galaxy", home="/opt/galaxy")
    assert binding.lookup("galaxy").home == "/opt/galaxy"


def test_unknown_user_raises():
    binding = NISBinding(NISDomain("simple"))
    with pytest.raises(NISError):
        binding.lookup("ghost")
