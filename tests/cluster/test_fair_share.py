"""Condor user fair-share scheduling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CondorPool, JobState, MachineAd
from repro.simcore import SimContext


def make_pool(fair_share=True):
    ctx = SimContext(seed=50)
    pool = CondorPool(ctx, negotiation_interval_s=5.0, fair_share=fair_share)
    pool.add_machine(MachineAd(name="m", cores=1, memory_gb=8.0, cpu_factor=1.0))
    return ctx, pool


def completion_owners(ctx, pool, jobs):
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j) for j in jobs]))
    done = sorted(jobs, key=lambda j: j.end_time)
    return [j.owner for j in done]


def test_fair_share_alternates_users():
    ctx, pool = make_pool(fair_share=True)
    jobs = [pool.submit(cpu_work=10.0, owner="alice") for _ in range(3)]
    jobs += [pool.submit(cpu_work=10.0, owner="bob") for _ in range(3)]
    order = completion_owners(ctx, pool, jobs)
    # after the first job, users alternate rather than draining alice first
    assert order != ["alice"] * 3 + ["bob"] * 3
    assert order[:4].count("bob") >= 2


def test_fifo_mode_preserves_submission_order():
    ctx, pool = make_pool(fair_share=False)
    jobs = [pool.submit(cpu_work=10.0, owner="alice") for _ in range(3)]
    jobs += [pool.submit(cpu_work=10.0, owner="bob") for _ in range(3)]
    order = completion_owners(ctx, pool, jobs)
    assert order == ["alice"] * 3 + ["bob"] * 3


def test_usage_accounting():
    ctx, pool = make_pool()
    j1 = pool.submit(cpu_work=25.0, owner="alice", io_work=5.0)
    ctx.sim.run(until=pool.when_done(j1))
    assert pool.usage_by_owner["alice"] == pytest.approx(30.0)


def test_heavy_user_yields_to_new_user():
    ctx, pool = make_pool()
    heavy = [pool.submit(cpu_work=50.0, owner="hog") for _ in range(4)]
    ctx.sim.run(until=pool.when_done(heavy[0]))
    newcomer = pool.submit(cpu_work=10.0, owner="newbie")
    ctx.sim.run(until=pool.when_done(newcomer))
    # the newcomer did not wait for all of hog's queue
    still_idle = [j for j in heavy if j.state == JobState.IDLE]
    assert len(still_idle) >= 1


# -- differential: per-owner buckets vs the re-sort they replaced --------------
#
# The negotiator's _match_order builds fair-share order from per-owner
# idle buckets (O(owners log owners) per cycle).  Its specification is
# the old implementation: a stable sort of the (submit_time, id)-ordered
# idle queue on accumulated usage.  These tests keep both in lockstep.


def fair_share_reference(pool):
    """The O(jobs log jobs) specification of fair-share match order."""
    usage = pool.usage_by_owner
    return sorted(
        pool.schedd.idle_jobs(), key=lambda j: usage.get(j.owner, 0.0)
    )


def assert_matches_reference(pool):
    got = [j.id for j in pool._match_order()]
    want = [j.id for j in fair_share_reference(pool)]
    assert got == want


def test_match_order_matches_stable_usage_sort_reference():
    ctx, pool = make_pool()
    pool.add_machine(MachineAd(name="m2", cores=2, memory_gb=8.0, cpu_factor=1.0))
    for i, owner in enumerate("abacbaccb"):
        pool.submit(cpu_work=5.0 + i, owner=owner)
    assert_matches_reference(pool)  # nobody has usage yet
    for until in (7.0, 13.0, 22.0):  # usage diverges as jobs complete
        ctx.sim.run(until=until)
        assert_matches_reference(pool)


def test_equal_usage_owners_merge_by_submission_order():
    """Owners in one usage group interleave exactly as a stable sort would."""
    ctx, pool = make_pool()
    jobs = [
        pool.submit(cpu_work=1.0, owner=o)
        for o in ("u1", "u2", "u3", "u1", "u2", "u3", "u2", "u1")
    ]
    assert [j.id for j in pool._match_order()] == [j.id for j in jobs]


def test_match_order_consistent_after_eviction_requeue():
    """``drain=False`` eviction requeues through the dirty-owner path."""
    ctx, pool = make_pool()
    jobs = [
        pool.submit(cpu_work=20.0, owner=o)
        for o in ("alice", "bob", "alice", "bob")
    ]
    ctx.sim.run(until=3.0)  # alice's first job is mid-run on "m"
    running = [j for j in jobs if j.state == JobState.RUNNING]
    assert running
    pool.remove_machine("m", drain=False)  # evict: back to idle, dirty owner
    ctx.sim.run(until=ctx.sim.timeout(0.0))  # deliver the eviction interrupt
    assert all(j.state == JobState.IDLE for j in jobs)
    assert_matches_reference(pool)
    pool.add_machine(MachineAd(name="m2", cores=1, memory_gb=8.0, cpu_factor=1.0))
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j) for j in jobs]))
    assert all(j.state == JobState.COMPLETED for j in jobs)
    assert not pool.schedd.idle_owners()


@given(
    pattern=st.lists(st.sampled_from("abcd"), min_size=1, max_size=20),
    checkpoints=st.lists(
        st.floats(min_value=1.0, max_value=40.0), max_size=3
    ),
)
@settings(max_examples=25, deadline=None)
def test_property_match_order_tracks_reference_through_time(pattern, checkpoints):
    ctx, pool = make_pool()
    for i, owner in enumerate(pattern):
        pool.submit(cpu_work=2.0 + (i % 5), owner=owner)
    assert_matches_reference(pool)
    for until in sorted(checkpoints):
        ctx.sim.run(until=until)
        assert_matches_reference(pool)
