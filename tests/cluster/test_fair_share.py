"""Condor user fair-share scheduling."""

import pytest

from repro.cluster import CondorPool, JobState, MachineAd
from repro.simcore import SimContext


def make_pool(fair_share=True):
    ctx = SimContext(seed=50)
    pool = CondorPool(ctx, negotiation_interval_s=5.0, fair_share=fair_share)
    pool.add_machine(MachineAd(name="m", cores=1, memory_gb=8.0, cpu_factor=1.0))
    return ctx, pool


def completion_owners(ctx, pool, jobs):
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j) for j in jobs]))
    done = sorted(jobs, key=lambda j: j.end_time)
    return [j.owner for j in done]


def test_fair_share_alternates_users():
    ctx, pool = make_pool(fair_share=True)
    jobs = [pool.submit(cpu_work=10.0, owner="alice") for _ in range(3)]
    jobs += [pool.submit(cpu_work=10.0, owner="bob") for _ in range(3)]
    order = completion_owners(ctx, pool, jobs)
    # after the first job, users alternate rather than draining alice first
    assert order != ["alice"] * 3 + ["bob"] * 3
    assert order[:4].count("bob") >= 2


def test_fifo_mode_preserves_submission_order():
    ctx, pool = make_pool(fair_share=False)
    jobs = [pool.submit(cpu_work=10.0, owner="alice") for _ in range(3)]
    jobs += [pool.submit(cpu_work=10.0, owner="bob") for _ in range(3)]
    order = completion_owners(ctx, pool, jobs)
    assert order == ["alice"] * 3 + ["bob"] * 3


def test_usage_accounting():
    ctx, pool = make_pool()
    j1 = pool.submit(cpu_work=25.0, owner="alice", io_work=5.0)
    ctx.sim.run(until=pool.when_done(j1))
    assert pool.usage_by_owner["alice"] == pytest.approx(30.0)


def test_heavy_user_yields_to_new_user():
    ctx, pool = make_pool()
    heavy = [pool.submit(cpu_work=50.0, owner="hog") for _ in range(4)]
    ctx.sim.run(until=pool.when_done(heavy[0]))
    newcomer = pool.submit(cpu_work=10.0, owner="newbie")
    ctx.sim.run(until=pool.when_done(newcomer))
    # the newcomer did not wait for all of hog's queue
    still_idle = [j for j in heavy if j.state == JobState.IDLE]
    assert len(still_idle) >= 1
