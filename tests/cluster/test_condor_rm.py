"""condor_rm semantics."""

import pytest

from repro.cluster import CondorError, CondorPool, JobState, MachineAd
from repro.simcore import SimContext


def make_pool():
    ctx = SimContext(seed=80)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    pool.add_machine(MachineAd(name="m", cores=1, memory_gb=8.0, cpu_factor=1.0))
    return ctx, pool


def test_remove_idle_job():
    ctx, pool = make_pool()
    running = pool.submit(cpu_work=100.0)
    queued = pool.submit(cpu_work=100.0)
    ctx.sim.run(until=10.0)
    assert queued.state == JobState.IDLE
    pool.remove_job(queued)
    assert queued.state == JobState.REMOVED
    ctx.sim.run(until=pool.when_done(running))
    assert running.state == JobState.COMPLETED
    assert queued.state == JobState.REMOVED  # never resurrected


def test_remove_running_job_frees_slot():
    ctx, pool = make_pool()
    victim = pool.submit(cpu_work=1000.0)
    waiter = pool.submit(cpu_work=10.0)
    ctx.sim.run(until=10.0)
    assert victim.state == JobState.RUNNING
    pool.remove_job(victim)
    ctx.sim.run(until=pool.when_done(waiter))
    assert victim.state == JobState.REMOVED
    assert waiter.state == JobState.COMPLETED
    # the slot freed well before the victim would have finished
    assert ctx.now < 100.0


def test_remove_completed_job_rejected():
    ctx, pool = make_pool()
    job = pool.submit(cpu_work=10.0)
    ctx.sim.run(until=pool.when_done(job))
    with pytest.raises(CondorError, match="already"):
        pool.remove_job(job)
    with pytest.raises(CondorError):
        pool.remove_job(job)
