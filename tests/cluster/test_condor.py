"""Condor pool: matchmaking, dynamic membership, drain/evict."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CondorError, CondorPool, JobState, MachineAd
from repro.simcore import SimContext


def make_pool(machines=(), interval=20.0):
    ctx = SimContext(seed=3)
    pool = CondorPool(ctx, negotiation_interval_s=interval)
    for name, cores, mem, speed in machines:
        pool.add_machine(MachineAd(name=name, cores=cores, memory_gb=mem, cpu_factor=speed))
    return ctx, pool


def test_single_job_runs_and_completes():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0)])
    job = pool.submit(cpu_work=100.0, owner="boliu")
    ctx.sim.run(until=pool.when_done(job))
    assert job.state == JobState.COMPLETED
    assert job.machine_name == "w1"
    assert job.end_time == pytest.approx(100.0, abs=1.0)


def test_job_duration_scales_with_machine_speed():
    ctx, pool = make_pool([("fast", 1, 4.0, 2.0)])
    job = pool.submit(cpu_work=100.0)
    ctx.sim.run(until=pool.when_done(job))
    assert job.end_time - job.start_time == pytest.approx(50.0)


def test_rank_prefers_fastest_machine_by_default():
    ctx, pool = make_pool([("slow", 4, 8.0, 1.0), ("fast", 4, 8.0, 3.0)])
    jobs = [pool.submit(cpu_work=10.0) for _ in range(3)]
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j) for j in jobs]))
    assert all(j.machine_name == "fast" for j in jobs)


def test_jobs_queue_when_slots_busy():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0)])
    j1 = pool.submit(cpu_work=100.0)
    j2 = pool.submit(cpu_work=100.0)
    ctx.sim.run(until=pool.when_done(j2))
    assert j1.end_time == pytest.approx(100.0, abs=1.0)
    # second job starts only after the first releases the slot
    assert j2.start_time >= j1.end_time
    assert j2.queue_wait_s > 50.0


def test_multi_core_machine_runs_jobs_in_parallel():
    ctx, pool = make_pool([("w1", 2, 4.0, 1.0)])
    j1 = pool.submit(cpu_work=100.0)
    j2 = pool.submit(cpu_work=100.0)
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j1), pool.when_done(j2)]))
    assert j1.end_time == pytest.approx(j2.end_time, abs=1.0)
    assert ctx.now < 150.0


def test_memory_requirements_filter_machines():
    ctx, pool = make_pool([("tiny", 1, 0.6, 1.0), ("big", 1, 15.0, 1.0)])
    job = pool.submit(cpu_work=10.0, req_memory_gb=4.0)
    ctx.sim.run(until=pool.when_done(job))
    assert job.machine_name == "big"


def test_unmatchable_job_stays_idle():
    ctx, pool = make_pool([("tiny", 1, 0.6, 1.0)])
    job = pool.submit(cpu_work=10.0, req_memory_gb=64.0)
    ctx.sim.run(until=200.0)
    assert job.state == JobState.IDLE
    assert pool.queue_depth == 1


def test_custom_requirements_expression():
    ctx, pool = make_pool([("gpu", 1, 8.0, 1.0), ("cpu", 1, 8.0, 5.0)])
    pool.startds["gpu"].machine.attrs["has_gpu"] = True
    job = pool.submit(cpu_work=10.0, requirements=lambda m: m.attrs.get("has_gpu", False))
    ctx.sim.run(until=pool.when_done(job))
    assert job.machine_name == "gpu"


def test_adding_machine_at_runtime_drains_queue_faster():
    """The use-case mechanism: add a faster worker mid-run and jobs move."""
    ctx, pool = make_pool([("small", 1, 1.7, 1.0)])
    j1 = pool.submit(cpu_work=300.0)
    j2 = pool.submit(cpu_work=300.0)
    # after 50s, a c1.medium-like machine joins
    ctx.sim.call_in(
        50.0,
        lambda: pool.add_machine(MachineAd(name="medium", cores=2, memory_gb=1.7, cpu_factor=1.86)),
    )
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j1), pool.when_done(j2)]))
    assert j2.machine_name == "medium"
    # j2 runs at 1.86x: done near 50 + 300/1.86 ~ 211 rather than 600
    assert j2.end_time < 300.0


def test_drain_removal_waits_for_running_job():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0), ("w2", 1, 1.7, 1.0)])
    j = pool.submit(cpu_work=100.0, rank=lambda m: 1.0 if m.name == "w1" else 0.0)
    ctx.sim.run(until=10.0)
    assert j.state == JobState.RUNNING
    removal = pool.remove_machine("w1", drain=True)
    ctx.sim.run(until=removal)
    assert ctx.now == pytest.approx(100.0, abs=1.0)
    assert j.state == JobState.COMPLETED
    assert "w1" not in pool.startds


def test_evict_removal_rematches_job():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0)])
    j = pool.submit(cpu_work=100.0)
    ctx.sim.run(until=10.0)
    assert j.state == JobState.RUNNING
    pool.remove_machine("w1", drain=False)
    pool.add_machine(MachineAd(name="w2", cores=1, memory_gb=1.7, cpu_factor=1.0))
    ctx.sim.run(until=pool.when_done(j))
    assert j.evictions == 1
    assert j.machine_name == "w2"
    # work restarts from scratch on the new machine
    assert j.end_time == pytest.approx(110.0, abs=21.0)


def test_remove_unknown_machine_and_duplicate_add():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0)])
    with pytest.raises(CondorError):
        pool.remove_machine("ghost")
    with pytest.raises(CondorError):
        pool.add_machine(MachineAd(name="w1", cores=1, memory_gb=1.0, cpu_factor=1.0))


def test_negative_work_rejected():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0)])
    with pytest.raises(CondorError):
        pool.submit(cpu_work=-1.0)


def test_on_complete_callback_runs():
    ctx, pool = make_pool([("w1", 1, 1.7, 1.0)])
    seen = []
    job = pool.submit(cpu_work=10.0, on_complete=lambda j: seen.append(j.id))
    ctx.sim.run(until=pool.when_done(job))
    assert seen == [job.id]


def test_pool_stats():
    ctx, pool = make_pool([("w1", 2, 4.0, 1.0)])
    pool.submit(cpu_work=100.0)
    pool.submit(cpu_work=100.0)
    pool.submit(cpu_work=100.0)
    ctx.sim.run(until=10.0)
    assert pool.running_count == 2
    assert pool.queue_depth == 1
    assert pool.total_slots == 2
    assert pool.machine_names() == ["w1"]


@settings(deadline=None, max_examples=25)
@given(
    st.lists(st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=4),
)
def test_property_all_jobs_complete_and_slots_never_oversubscribed(works, cores):
    ctx = SimContext(seed=11)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    pool.add_machine(MachineAd(name="m", cores=cores, memory_gb=8.0, cpu_factor=1.0))
    jobs = [pool.submit(cpu_work=w) for w in works]
    max_running = 0

    def watch():
        nonlocal max_running
        while any(j.state != JobState.COMPLETED for j in jobs):
            max_running = max(max_running, pool.running_count)
            yield ctx.sim.timeout(1.0)

    ctx.sim.process(watch())
    ctx.sim.run(until=ctx.sim.all_of([pool.when_done(j) for j in jobs]))
    assert all(j.state == JobState.COMPLETED for j in jobs)
    assert max_running <= cores
    # makespan sanity: at least total/“cores”, at most serial + negotiation slack
    total = sum(works)
    assert ctx.now >= total / cores - 1.0
    assert ctx.now <= total + 5.0 * len(works) + 1.0
