"""Property-based matchmaking checks over random pools and job mixes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import CondorPool, JobState, MachineAd
from repro.simcore import SimContext

machine_st = st.tuples(
    st.integers(min_value=1, max_value=4),            # cores
    st.sampled_from([0.6, 1.7, 7.5, 15.0]),           # memory
    st.floats(min_value=0.5, max_value=4.0),          # cpu factor
)

job_st = st.tuples(
    st.floats(min_value=1.0, max_value=60.0),         # work
    st.sampled_from([0.0, 1.0, 4.0, 10.0]),           # memory requirement
)


@settings(max_examples=25, deadline=None)
@given(
    machines=st.lists(machine_st, min_size=1, max_size=4),
    jobs=st.lists(job_st, min_size=1, max_size=10),
)
def test_property_memory_requirements_always_honoured(machines, jobs):
    ctx = SimContext(seed=17)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    for i, (cores, mem, speed) in enumerate(machines):
        pool.add_machine(
            MachineAd(name=f"m{i}", cores=cores, memory_gb=mem, cpu_factor=speed)
        )
    submitted = [
        pool.submit(cpu_work=w, req_memory_gb=req) for w, req in jobs
    ]
    max_mem = max(m[1] for m in machines)
    satisfiable = [j for j, (w, req) in zip(submitted, jobs) if req <= max_mem]
    unsatisfiable = [j for j, (w, req) in zip(submitted, jobs) if req > max_mem]
    if satisfiable:
        ctx.sim.run(
            until=ctx.sim.all_of([pool.when_done(j) for j in satisfiable])
        )
    # every satisfiable job completed on a machine with enough memory
    by_name = {m.machine.name: m.machine for m in pool.startds.values()}
    for job, (w, req) in zip(submitted, jobs):
        if job in satisfiable:
            assert job.state == JobState.COMPLETED
            assert by_name[job.machine_name].memory_gb >= req
    # unsatisfiable jobs never ran
    for job in unsatisfiable:
        assert job.state == JobState.IDLE


@settings(max_examples=15, deadline=None)
@given(
    works=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=8),
    fast_factor=st.floats(min_value=1.5, max_value=4.0),
)
def test_property_default_rank_prefers_faster_machines(works, fast_factor):
    """With a free fast machine and a free slow one, jobs pick the fast one."""
    ctx = SimContext(seed=18)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    pool.add_machine(MachineAd(name="slow", cores=1, memory_gb=8.0, cpu_factor=1.0))
    pool.add_machine(
        MachineAd(name="fast", cores=1, memory_gb=8.0, cpu_factor=fast_factor)
    )
    first = pool.submit(cpu_work=works[0])
    ctx.sim.run(until=pool.when_done(first))
    assert first.machine_name == "fast"
