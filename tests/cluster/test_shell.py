"""SSH shells on deployed hosts (Fig. 1 step 5)."""

import pytest

from repro.cluster import SSHError
from repro.core import CloudTestbed, usecase_topology
from repro.provision import GlobusProvision


@pytest.fixture(scope="module")
def world():
    bed = CloudTestbed(seed=40)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return bed, gp, gpi


def test_ssh_basic_commands(world):
    bed, gp, gpi = world
    shell = gpi.deployment.ssh("simple-galaxy-condor", "boliu")
    assert shell.run("whoami").stdout == "boliu"
    assert shell.run("hostname").stdout == gpi.deployment.node("simple-galaxy-condor").hostname
    assert shell.run("pwd").stdout == "/home/boliu"


def test_ssh_requires_known_user(world):
    _, _, gpi = world
    with pytest.raises(SSHError, match="Permission denied"):
        gpi.deployment.ssh("simple-galaxy-condor", "intruder")


def test_ssh_wrong_keypair_rejected(world):
    _, _, gpi = world
    with pytest.raises(SSHError, match="publickey"):
        gpi.deployment.ssh("simple-galaxy-condor", "boliu", keypair="someone-elses")
    shell = gpi.deployment.ssh("simple-galaxy-condor", "boliu", keypair="gp-key")
    assert shell.run("whoami").ok


def test_ssh_sees_shared_filesystem(world):
    bed, _, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu")
    app.upload_data(history, "visible.txt", data=b"over nfs", ext="txt")
    shell = gpi.deployment.ssh("simple-condor-wn1", "boliu")
    listing = shell.run("ls /home/galaxy/database/files")
    assert listing.ok and "dataset_1.dat" in listing.stdout
    assert shell.run("cat /home/galaxy/database/files/dataset_1.dat").stdout == "over nfs"


def test_ssh_condor_commands(world):
    bed, _, gpi = world
    shell = gpi.deployment.ssh("simple-galaxy-condor", "boliu")
    status = shell.run("condor_status")
    assert status.ok
    assert "simple-condor-wn1" in status.stdout
    queue = shell.run("condor_q")
    assert queue.ok


def test_ssh_service_status_and_unknown_command(world):
    _, _, gpi = world
    shell = gpi.deployment.ssh("simple-gridftp", "boliu")
    result = shell.run("service gridftp status")
    assert result.ok and "running" in result.stdout
    bad = shell.run("rm -rf /")
    assert bad.exit_code == 127
    missing = shell.run("service nonexistent status")
    assert missing.exit_code == 3


def test_ssh_to_stopped_host_fails(world):
    bed, gp, gpi = world
    gp.stop(gpi.id)
    try:
        with pytest.raises(SSHError):
            gpi.deployment.ssh("simple-galaxy-condor", "boliu")
    finally:
        def resume():
            yield from gp.start(gpi.id)

        bed.ctx.sim.run(until=bed.ctx.sim.process(resume()))
