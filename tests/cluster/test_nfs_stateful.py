"""Stateful property testing of SimFilesystem with a model-based oracle."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.cluster import FilesystemError, SimFilesystem

_names = st.sampled_from(["a", "b", "c", "d", "data", "home"])


class FilesystemMachine(RuleBasedStateMachine):
    """Random write/remove/rename sequences vs a dict model."""

    paths = Bundle("paths")

    def __init__(self):
        super().__init__()
        self.fs = SimFilesystem()
        self.model: dict[str, bytes] = {}

    @rule(target=paths, parts=st.lists(_names, min_size=1, max_size=3))
    def make_path(self, parts):
        return "/" + "/".join(parts)

    @rule(path=paths, data=st.binary(min_size=0, max_size=32))
    def write(self, path, data):
        try:
            self.fs.write(path, data=data)
        except FilesystemError:
            # a rejection is only legitimate when the path conflicts with
            # existing structure: it is a directory, a model file lives
            # beneath it, or one of its ancestors is a model file
            descendant_conflict = any(
                p.startswith(path + "/") for p in self.model
            )
            ancestor_conflict = any(
                path.startswith(p + "/") for p in self.model
            )
            assert descendant_conflict or ancestor_conflict or self.fs.isdir(path)
            return
        # writing may implicitly invalidate nothing; record it
        self.model[path] = data
        # any model entries that were "under" this file are impossible;
        # the fs would have rejected those writes earlier, so no cleanup

    @rule(path=paths)
    def remove(self, path):
        if path in self.model:
            self.fs.remove(path)
            del self.model[path]
        else:
            try:
                self.fs.remove(path)
            except FilesystemError:
                pass  # not a file; may be a missing path or busy dir
            else:
                # removed an empty directory: fine, not in the file model
                assert path not in self.model

    @rule(src=paths, dst=paths)
    def rename(self, src, dst):
        if src in self.model and src != dst:
            try:
                self.fs.rename(src, dst)
            except FilesystemError:
                return
            self.model[dst] = self.model.pop(src)

    @invariant()
    def files_match_model(self):
        for path, data in self.model.items():
            assert self.fs.isfile(path)
            assert self.fs.read(path) == data
        assert self.fs.total_size() == sum(len(d) for d in self.model.values())


FilesystemMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestFilesystemStateful = FilesystemMachine.TestCase
