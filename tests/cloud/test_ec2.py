"""Mock EC2 control plane: lifecycle, events, AMIs, billing integration."""

import pytest

from repro.cloud import EC2Error, InstanceState, MockEC2
from repro.simcore import SimContext


def make_ec2(boot_jitter=0.0):
    ctx = SimContext(seed=1)
    return ctx, MockEC2(ctx, boot_jitter=boot_jitter)


def test_gp_public_ami_is_preregistered():
    _, ec2 = make_ec2()
    ami = ec2.images["ami-b12ee0d8"]
    assert "condor" in ami.preloaded
    assert "globus-toolkit" in ami.preloaded


def test_run_instance_boots_after_type_latency():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    assert inst.state == InstanceState.PENDING
    ctx.sim.run(until=ec2.when_running(inst.id))
    assert inst.state == InstanceState.RUNNING
    assert ctx.now == pytest.approx(inst.itype.boot_latency_s)


def test_bigger_instances_boot_faster():
    ctx, ec2 = make_ec2()
    (small,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    (xl,) = ec2.run_instances("ami-b12ee0d8", "m1.xlarge")
    ctx.sim.run()
    # both running; xlarge's boot latency is smaller
    assert xl.itype.boot_latency_s < small.itype.boot_latency_s


def test_run_multiple_instances():
    ctx, ec2 = make_ec2()
    instances = ec2.run_instances("ami-b12ee0d8", "c1.medium", count=3)
    assert len(instances) == 3
    assert len({i.id for i in instances}) == 3
    ctx.sim.run()
    assert all(i.state == InstanceState.RUNNING for i in instances)


def test_unknown_ami_and_keypair_rejected():
    _, ec2 = make_ec2()
    with pytest.raises(EC2Error, match="AMI"):
        ec2.run_instances("ami-nope", "m1.small")
    with pytest.raises(EC2Error, match="keypair"):
        ec2.run_instances("ami-b12ee0d8", "m1.small", keypair="missing")
    with pytest.raises(EC2Error, match="count"):
        ec2.run_instances("ami-b12ee0d8", "m1.small", count=0)


def test_keypair_create_and_duplicate():
    _, ec2 = make_ec2()
    kp = ec2.create_keypair("gp-key")
    assert kp.name == "gp-key"
    with pytest.raises(EC2Error):
        ec2.create_keypair("gp-key")


def test_stop_then_start_cycle():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    ctx.sim.run()
    ec2.stop_instances([inst.id])
    assert inst.state == InstanceState.STOPPING
    ctx.sim.run()
    assert inst.state == InstanceState.STOPPED
    ec2.start_instances([inst.id])
    ctx.sim.run(until=ec2.when_running(inst.id))
    assert inst.state == InstanceState.RUNNING


def test_stop_non_running_is_error():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    with pytest.raises(EC2Error, match="cannot stop"):
        ec2.stop_instances([inst.id])


def test_terminate_releases_and_is_final():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    ctx.sim.run()
    ec2.terminate_instances([inst.id])
    ctx.sim.run()
    assert inst.state == InstanceState.TERMINATED
    with pytest.raises(EC2Error):
        ec2.start_instances([inst.id])
    with pytest.raises(EC2Error, match="never run"):
        ec2.when_running(inst.id)


def test_terminate_while_pending_fails_waiters():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    waiter = ec2.when_running(inst.id)

    def proc():
        with pytest.raises(EC2Error, match="terminated before running"):
            yield waiter
        return "saw failure"

    p = ctx.sim.process(proc())
    ec2.terminate_instances([inst.id])
    assert ctx.sim.run(until=p) == "saw failure"
    assert inst.state == InstanceState.TERMINATED


def test_billing_meters_only_running_time():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")  # boots at t=90
    ctx.sim.run(until=ec2.when_running(inst.id))
    start = ctx.now
    ctx.sim.call_in(3600.0, lambda: ec2.stop_instances([inst.id]))
    ctx.sim.run()
    cost = ec2.meter.cost(ctx.now)
    # exactly one hour of m1.small at the paper price book (0.04/h)
    assert cost == pytest.approx(0.04, rel=1e-6)
    assert ec2.meter.instance_hours(ctx.now) == pytest.approx(1.0)
    assert start == pytest.approx(90.0)


def test_describe_with_filters():
    ctx, ec2 = make_ec2()
    ec2.run_instances("ami-b12ee0d8", "m1.small", tags={"role": "worker"})
    ec2.run_instances("ami-b12ee0d8", "c1.medium", tags={"role": "head"})
    ctx.sim.run()
    workers = ec2.describe_instances(tag_filters={"role": "worker"})
    assert len(workers) == 1
    running = ec2.describe_instances(states=[InstanceState.RUNNING])
    assert len(running) == 2


def test_create_image_snapshots_software():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    ctx.sim.run()
    inst.tags["software"] = "galaxy,crdata-tools"
    ami = ec2.create_image(inst.id, "my-preloaded")
    assert "galaxy" in ami.preloaded
    assert "condor" in ami.preloaded  # inherited from source AMI


def test_boot_jitter_is_deterministic_per_seed():
    ctx1 = SimContext(seed=9)
    ec2a = MockEC2(ctx1, boot_jitter=0.1)
    (a,) = ec2a.run_instances("ami-b12ee0d8", "m1.small")
    ctx1.sim.run(until=ec2a.when_running(a.id))

    ctx2 = SimContext(seed=9)
    ec2b = MockEC2(ctx2, boot_jitter=0.1)
    (b,) = ec2b.run_instances("ami-b12ee0d8", "m1.small")
    ctx2.sim.run(until=ec2b.when_running(b.id))
    assert ctx1.now == ctx2.now


def test_when_running_on_already_running_instance_fires_immediately():
    ctx, ec2 = make_ec2()
    (inst,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    ctx.sim.run()

    def proc():
        got = yield ec2.when_running(inst.id)
        return got.id

    assert ctx.sim.run(until=ctx.sim.process(proc())) == inst.id
