"""Instance-type catalog and alias resolution."""

import pytest

from repro.cloud import ALIASES, CATALOG, resolve


def test_catalog_has_the_papers_five_types():
    assert set(CATALOG) == {"t1.micro", "m1.small", "c1.medium", "m1.large", "m1.xlarge"}


def test_resolve_by_api_name():
    t = resolve("c1.medium")
    assert t.name == "c1.medium"
    assert t.cores == 2


def test_resolve_by_alias():
    assert resolve("small").name == "m1.small"
    assert resolve("extra-large").name == "m1.xlarge"
    assert resolve("XLARGE").name == "m1.xlarge"


def test_resolve_unknown_raises_with_catalog_listing():
    with pytest.raises(KeyError, match="m1.small"):
        resolve("m9.gigantic")


def test_cpu_factors_increase_with_paper_size_ordering():
    order = ["t1.micro", "m1.small", "c1.medium", "m1.large", "m1.xlarge"]
    factors = [CATALOG[n].cpu_factor for n in order]
    assert factors == sorted(factors)
    assert CATALOG["m1.small"].cpu_factor == 1.0


def test_io_factors_increase_with_size():
    order = ["m1.small", "c1.medium", "m1.large", "m1.xlarge"]
    factors = [CATALOG[n].io_factor for n in order]
    assert factors == sorted(factors)


def test_boot_latency_decreases_with_size():
    assert (
        CATALOG["m1.xlarge"].boot_latency_s
        < CATALOG["c1.medium"].boot_latency_s
        < CATALOG["m1.small"].boot_latency_s
    )


def test_ecu_per_core():
    assert resolve("c1.medium").ecu_per_core == pytest.approx(2.5)
    assert resolve("m1.xlarge").ecu_per_core == pytest.approx(2.0)


def test_all_aliases_resolve():
    for alias in ALIASES:
        assert resolve(alias).name in CATALOG
