"""Vectorized cost estimator: scalar-loop equivalence and Fig. 10 anchors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import calibration
from repro.cloud import (
    DEFAULT_INSTANCE_TYPES,
    PriceBook,
    estimate_batch,
    estimate_scalar_loop,
    estimate_usecase_steps34,
)
from repro.crdata import USECASE_TOOL_ID, build_crdata_tools
from repro.workloads import make_pricing_sweep_sizes

#: what the calibrated model pins per step-3+4 column: 150 s of fixed
#: overhead (2 jobs x 75 s) plus 500 m1.small-seconds of work / factor
MODEL_STEPS34_S = {
    t: 2 * calibration.JOB_FIXED_OVERHEAD_S + 500.0 / calibration.CPU_FACTORS[t]
    for t in DEFAULT_INSTANCE_TYPES
}

#: the paper's Fig. 10 execution anchors, seconds
PAPER_STEPS34_S = {
    "m1.small": 642.0,
    "c1.medium": 414.0,
    "m1.large": 324.0,
    "m1.xlarge": 276.0,
}


@pytest.fixture(scope="module")
def usecase_tool():
    return next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)


def test_batch_equals_scalar_loop_exactly(usecase_tool):
    sizes = make_pricing_sweep_sizes(n_jobs=500, seed=3)
    est = estimate_batch(usecase_tool, sizes)
    ref = estimate_scalar_loop(usecase_tool, sizes)
    assert np.array_equal(est.seconds, ref.seconds)  # bitwise, not approx
    assert np.array_equal(est.cost_usd, ref.cost_usd)
    assert np.array_equal(est.cpu_work, ref.cpu_work)
    assert np.array_equal(est.io_work, ref.io_work)


@given(
    sizes=st.lists(
        st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
def test_property_batch_equals_scalar_loop(sizes):
    tool = next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)
    arr = np.asarray(sizes, dtype=float)
    est = estimate_batch(tool, arr)
    ref = estimate_scalar_loop(tool, arr)
    assert np.array_equal(est.seconds, ref.seconds)
    assert np.array_equal(est.cost_usd, ref.cost_usd)


def test_usecase_anchor_within_two_percent_of_paper():
    est = estimate_usecase_steps34()
    totals = est.total_seconds()
    assert est.n_jobs == 2
    for itype, anchor in PAPER_STEPS34_S.items():
        rel = abs(totals[itype] - anchor) / anchor
        assert rel <= 0.02, f"{itype}: {totals[itype]:.1f}s vs {anchor:.0f}s anchor"


def test_usecase_matches_calibrated_model_closed_form():
    est = estimate_usecase_steps34()
    totals = est.total_seconds()
    for itype, expect in MODEL_STEPS34_S.items():
        # int-truncated archive byte sizes put the work a hair under 500
        assert totals[itype] == pytest.approx(expect, rel=1e-7)


def test_cost_is_rate_times_seconds(usecase_tool):
    book = PriceBook.paper()
    est = estimate_batch(usecase_tool, np.array([10.7e6, 190.3e6]), book=book)
    for itype in est.instance_types:
        expect = book.hourly(itype) * est.seconds_for(itype) / 3600.0
        assert np.array_equal(est.cost_for(itype), expect)


def test_cheapest_and_fastest_bracket_the_grid(usecase_tool):
    est = estimate_batch(usecase_tool, make_pricing_sweep_sizes(n_jobs=100, seed=1))
    assert est.cheapest() == "m1.small"
    assert est.fastest() == "m1.xlarge"
    secs = [est.total_seconds()[t] for t in est.instance_types]
    costs = [est.total_cost()[t] for t in est.instance_types]
    assert secs == sorted(secs, reverse=True)
    assert costs == sorted(costs)


def test_custom_instance_subset_and_overhead(usecase_tool):
    est = estimate_batch(
        usecase_tool,
        np.array([1e6]),
        instance_types=("m1.large",),
        overhead_s=0.0,
    )
    assert est.instance_types == ("m1.large",)
    assert est.seconds.shape == (1, 1)
    cpu, io = usecase_tool.work_batch({}, np.array([1e6]))
    expect = (
        cpu[0] / calibration.CPU_FACTORS["m1.large"]
        + io[0] / calibration.IO_FACTORS["m1.large"]
    )
    assert est.seconds[0, 0] == pytest.approx(expect)


def test_unknown_instance_type_raises(usecase_tool):
    with pytest.raises(KeyError, match="cpu factor"):
        estimate_batch(usecase_tool, np.array([1e6]), instance_types=("m7i.large",))
    with pytest.raises(KeyError, match="no such instance type"):
        estimate_usecase_steps34().column("m7i.large")
