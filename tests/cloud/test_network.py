"""TCP throughput model: formulas, protocol models, Fig. 11 preconditions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import calibration
from repro.cloud import (
    NetworkPath,
    TransferTooLarge,
    aggregate_rate_bps,
    ftp_model,
    globus_model,
    globus_streams_for,
    http_model,
    mathis_limit_bps,
    slow_start_ramp_s,
    stream_rate_bps,
)

MB = calibration.MB
GB = calibration.GB


def test_path_validation():
    with pytest.raises(ValueError):
        NetworkPath(rtt_s=0, loss=0.001, bottleneck_bps=1e8)
    with pytest.raises(ValueError):
        NetworkPath(rtt_s=0.05, loss=0.0, bottleneck_bps=1e8)
    with pytest.raises(ValueError):
        NetworkPath(rtt_s=0.05, loss=0.001, bottleneck_bps=0)


def test_mathis_limit_on_paper_wan_is_about_9_mbps():
    limit = mathis_limit_bps(NetworkPath.paper_wan())
    assert 8e6 < limit < 10e6


def test_stream_rate_window_limited():
    path = NetworkPath.paper_wan()
    # tiny window: limited by window/RTT, far below Mathis
    rate = stream_rate_bps(path, window_bytes=4096)
    assert rate == pytest.approx(4096 * 8 / path.rtt_s)


def test_aggregate_rate_capped_by_bottleneck():
    path = NetworkPath(rtt_s=0.05, loss=1e-6, bottleneck_bps=10e6)
    assert aggregate_rate_bps(path, streams=64, window_bytes=1 * MB) == 10e6


def test_aggregate_requires_positive_streams():
    with pytest.raises(ValueError):
        aggregate_rate_bps(NetworkPath.paper_wan(), streams=0, window_bytes=1024)


def test_slow_start_ramp_grows_with_window():
    path = NetworkPath.paper_wan()
    assert slow_start_ramp_s(path, 1 * MB) > slow_start_ramp_s(path, 64 * 1024)
    assert slow_start_ramp_s(path, 1024) == 0.0  # window below one MSS


def test_globus_autotune_streams_increase_with_size():
    assert globus_streams_for(1 * MB) == 1
    assert globus_streams_for(64 * MB) == 2
    assert globus_streams_for(1 * GB) == calibration.GO_STREAMS


def test_http_cap_at_2gb():
    path = NetworkPath.paper_wan()
    model = http_model()
    model.transfer_seconds(path, 2 * GB)  # at the cap: allowed
    with pytest.raises(TransferTooLarge):
        model.transfer_seconds(path, 2 * GB + 1)


def test_fig11_anchor_rates_near_paper():
    """Calibration sanity: endpoints of each series sit near the paper."""
    path = NetworkPath.paper_wan()
    go_small = globus_model(1 * MB).effective_rate_mbps(path, 1 * MB)
    go_big = globus_model(2 * GB).effective_rate_mbps(path, 2 * GB)
    ftp_small = ftp_model().effective_rate_mbps(path, 1 * MB)
    ftp_big = ftp_model().effective_rate_mbps(path, 2 * GB)
    http_any = http_model().effective_rate_mbps(path, 100 * MB)
    assert 1.4 < go_small < 2.4           # paper: 1.8
    assert 30 < go_big < 40               # paper: 37
    assert 0.1 < ftp_small < 0.35         # paper: 0.2
    assert 5.0 < ftp_big < 6.5            # paper: 5.9
    assert http_any < 0.03                # paper: < 0.03


def test_fig11_ordering_go_beats_ftp_beats_http_everywhere():
    path = NetworkPath.paper_wan()
    for size in calibration.FIGURE11_FILE_SIZES:
        go = globus_model(size).effective_rate_mbps(path, size)
        ftp = ftp_model().effective_rate_mbps(path, size)
        if size <= calibration.HTTP_MAX_BYTES:
            http = http_model().effective_rate_mbps(path, size)
            assert ftp > http
        assert go > ftp


def test_transfer_seconds_zero_size_is_overhead_only():
    path = NetworkPath.paper_wan()
    m = ftp_model()
    assert m.transfer_seconds(path, 0) == pytest.approx(
        m.overhead_s + slow_start_ramp_s(path, m.window_bytes)
    )


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        ftp_model().transfer_seconds(NetworkPath.paper_wan(), -1)


@given(st.integers(min_value=1, max_value=4 * GB))
def test_property_transfer_time_monotone_in_size(size):
    path = NetworkPath.paper_wan()
    m = ftp_model()
    t1 = m.transfer_seconds(path, size)
    t2 = m.transfer_seconds(path, size + MB)
    assert t2 > t1


@given(
    st.integers(min_value=1 * MB, max_value=2 * GB),
    st.integers(min_value=1, max_value=16),
)
def test_property_effective_rate_below_steady_rate(size, streams):
    """Average rate never exceeds the steady-state model rate."""
    from repro.cloud import ProtocolModel

    path = NetworkPath.paper_wan()
    m = ProtocolModel(name="x", streams=streams, window_bytes=256 * 1024, overhead_s=1.0)
    eff_bps = m.effective_rate_mbps(path, size) * 1e6
    assert eff_bps <= m.steady_rate_bps(path) * (1 + 1e-9)


@given(st.integers(min_value=1, max_value=64))
def test_property_more_streams_never_slower(streams):
    path = NetworkPath.paper_wan()
    r1 = aggregate_rate_bps(path, streams, 256 * 1024)
    r2 = aggregate_rate_bps(path, streams + 1, 256 * 1024)
    assert r2 >= r1


@given(st.floats(min_value=1e-4, max_value=0.5), st.floats(min_value=1e-6, max_value=0.1))
def test_property_mathis_decreases_with_rtt_and_loss(rtt, loss):
    base = NetworkPath(rtt_s=rtt, loss=loss, bottleneck_bps=1e12)
    worse_rtt = NetworkPath(rtt_s=rtt * 2, loss=loss, bottleneck_bps=1e12)
    worse_loss = NetworkPath(rtt_s=rtt, loss=min(0.99, loss * 4), bottleneck_bps=1e12)
    assert mathis_limit_bps(worse_rtt) < mathis_limit_bps(base)
    assert mathis_limit_bps(worse_loss) < mathis_limit_bps(base)
    assert math.isfinite(mathis_limit_bps(base))
