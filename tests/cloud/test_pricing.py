"""Price books and the billing meter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cloud import BillingMeter, PriceBook


def test_paper_book_costs_double_per_size_step():
    book = PriceBook.paper()
    sizes = ["m1.small", "c1.medium", "m1.large", "m1.xlarge"]
    prices = [book.hourly(s) for s in sizes]
    for lo, hi in zip(prices, prices[1:]):
        assert hi == pytest.approx(2 * lo)


def test_unknown_type_raises():
    with pytest.raises(KeyError):
        PriceBook.paper().hourly("m7i.large")


def test_negative_price_rejected():
    with pytest.raises(ValueError):
        PriceBook({"x": -1.0})


def test_proportional_cost_basic():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.stop("i-1", now=1800.0)  # half an hour
    assert m.cost(now=1800.0) == pytest.approx(0.04 / 2)


def test_hourly_mode_rounds_up():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.stop("i-1", now=61.0)  # one minute -> one full hour billed
    assert m.cost(now=61.0, mode="hourly") == pytest.approx(0.04)
    assert m.cost(now=61.0, mode="proportional") < 0.001


def test_open_interval_priced_to_now():
    m = BillingMeter()
    m.start("i-1", "c1.medium", now=0.0)
    assert m.cost(now=3600.0) == pytest.approx(0.08)


def test_double_start_and_bad_stop_rejected():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    with pytest.raises(ValueError):
        m.start("i-1", "m1.small", now=1.0)
    with pytest.raises(ValueError):
        m.stop("i-2", now=1.0)


def test_stop_before_start_rejected():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=10.0)
    with pytest.raises(ValueError):
        m.stop("i-1", now=5.0)


def test_zero_duration_interval_bills_full_hour_in_hourly_mode():
    """2012 EC2: an instance that starts bills an hour even if killed at once."""
    m = BillingMeter()
    m.start("i-1", "m1.small", now=100.0)
    m.stop("i-1", now=100.0)
    assert m.cost(now=100.0, mode="hourly") == pytest.approx(0.04)
    assert m.cost(now=100.0, mode="proportional") == 0.0


def test_open_zero_duration_interval_bills_full_hour_in_hourly_mode():
    m = BillingMeter()
    m.start("i-1", "m1.xlarge", now=50.0)
    assert m.cost(now=50.0, mode="hourly") == pytest.approx(0.32)


def test_zero_overlap_window_stays_free_in_both_modes():
    """Window clipping that leaves no overlap must not charge the started-hour."""
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.stop("i-1", now=100.0)
    for mode in ("proportional", "hourly"):
        assert m.cost(now=100.0, window=(500.0, 900.0), mode=mode) == 0.0


def test_boundary_touch_window_stays_free_in_hourly_mode():
    """An interval clipped to a single boundary instant has no billable span."""
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.stop("i-1", now=100.0)
    assert m.cost(now=100.0, window=(100.0, 200.0), mode="hourly") == 0.0


def test_window_clipping_prices_experiment_span_only():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.stop("i-1", now=7200.0)
    # only the middle hour
    cost = m.cost(now=7200.0, window=(1800.0, 5400.0))
    assert cost == pytest.approx(0.04)


def test_instance_id_filter():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.start("i-2", "m1.xlarge", now=0.0)
    m.stop("i-1", now=3600.0)
    m.stop("i-2", now=3600.0)
    assert m.cost(now=3600.0, instance_ids=["i-2"]) == pytest.approx(0.32)


def test_restart_creates_second_interval():
    m = BillingMeter()
    m.start("i-1", "m1.small", now=0.0)
    m.stop("i-1", now=100.0)
    m.start("i-1", "m1.small", now=200.0)
    m.stop("i-1", now=300.0)
    assert len(m.intervals) == 2
    assert m.instance_hours(now=300.0) == pytest.approx(200.0 / 3600.0)


def test_invalid_mode():
    m = BillingMeter()
    with pytest.raises(ValueError, match="billing mode"):
        m.cost(now=0.0, mode="spot")


@given(
    st.lists(
        st.tuples(st.floats(0, 1e5), st.floats(0.1, 1e5)),
        min_size=1,
        max_size=20,
    )
)
def test_property_hourly_never_cheaper_than_proportional(spans):
    """Round-up billing is always >= per-second billing."""
    m = BillingMeter()
    t = 0.0
    for gap, dur in spans:
        t += gap
        iid = f"i-{t}-{dur}"
        m.start(iid, "m1.small", now=t)
        t += dur
        m.stop(iid, now=t)
    assert m.cost(now=t, mode="hourly") >= m.cost(now=t, mode="proportional") - 1e-12


@given(st.floats(min_value=0.1, max_value=1e6))
def test_property_proportional_cost_linear_in_duration(dur):
    m = BillingMeter()
    m.start("i-1", "m1.large", now=0.0)
    m.stop("i-1", now=dur)
    assert m.cost(now=dur) == pytest.approx(0.16 * dur / 3600.0)
