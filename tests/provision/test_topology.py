"""Topology model: parsing, node planning, diffing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.provision import (
    PAPER_GALAXY_CONF,
    DomainSpec,
    EC2Spec,
    Topology,
    TopologyError,
    diff_topologies,
    with_extra_worker,
)


def paper_topology():
    return Topology.from_conf(PAPER_GALAXY_CONF)


def test_parse_paper_conf():
    topo = paper_topology()
    assert len(topo.domains) == 1
    dom = topo.domain("simple")
    assert dom.users == ("user1", "user2")
    assert dom.gridftp and dom.condor and dom.galaxy
    assert dom.cluster_nodes == 2
    assert dom.go_endpoint == "cvrg#galaxy"
    assert topo.ec2.keypair == "gp-key"
    assert topo.ec2.ami == "ami-b12ee0d8"
    assert topo.ec2.instance_type == "t1.micro"
    assert topo.globusonline is not None


def test_json_roundtrip():
    topo = paper_topology()
    again = Topology.from_json(topo.to_json())
    assert again == topo


def test_node_plan_matches_fig2_architecture():
    topo = paper_topology()
    plan = {n.name: n for n in topo.node_plan()}
    # NFS/NIS server, galaxy+condor head, gridftp node, 2 workers
    assert set(plan) == {
        "simple-server",
        "simple-galaxy-condor",
        "simple-gridftp",
        "simple-condor-wn1",
        "simple-condor-wn2",
    }
    head = plan["simple-galaxy-condor"]
    assert "galaxy" in head.roles and "condor-head" in head.roles
    assert "galaxy::galaxy-globus" in head.run_list
    # with NFS present, galaxy-globus-common runs on the server (paper III-B)
    assert "galaxy::galaxy-globus-common" in plan["simple-server"].run_list
    assert "galaxy::galaxy-globus-common" not in head.run_list
    assert all(
        n.instance_type == "t1.micro" for n in plan.values()
    )


def test_node_plan_without_nfs_moves_common_to_head():
    topo = Topology(
        domains=(
            DomainSpec(name="d", galaxy=True, nfs=False),
        )
    )
    plan = {n.name: n for n in topo.node_plan()}
    assert "d-server" not in plan
    assert "galaxy::galaxy-globus-common" in plan["d-galaxy-condor"].run_list


def test_crdata_adds_recipe_to_head_and_workers():
    topo = Topology(
        domains=(
            DomainSpec(
                name="d", galaxy=True, condor=True, crdata=True, cluster_nodes=2
            ),
        )
    )
    plan = {n.name: n for n in topo.node_plan()}
    assert "galaxy::galaxy-globus-crdata" in plan["d-galaxy-condor"].run_list
    assert "galaxy::galaxy-globus-crdata" in plan["d-condor-wn1"].run_list


def test_domain_validation():
    with pytest.raises(TopologyError, match="condor"):
        DomainSpec(name="d", cluster_nodes=2)
    with pytest.raises(TopologyError, match="galaxy"):
        DomainSpec(name="d", crdata=True)
    with pytest.raises(TopologyError, match="owner#name"):
        DomainSpec(name="d", go_endpoint="unqualified")
    with pytest.raises(TopologyError, match=">= 0"):
        DomainSpec(name="d", condor=True, cluster_nodes=-1)


def test_unknown_instance_type_rejected():
    with pytest.raises(KeyError):
        EC2Spec(instance_type="m5.enormous")


def test_topology_validation():
    with pytest.raises(TopologyError, match="at least one domain"):
        Topology(domains=())
    with pytest.raises(TopologyError, match="duplicate"):
        Topology(domains=(DomainSpec(name="a"), DomainSpec(name="a")))


def test_conf_missing_sections():
    with pytest.raises(TopologyError, match="domains"):
        Topology.from_conf("[general]\nx: y\n")
    with pytest.raises(TopologyError, match="domain-missing"):
        Topology.from_conf("[general]\ndomains: missing\n")


def test_worker_instance_types_padding():
    dom = DomainSpec(
        name="d", condor=True, cluster_nodes=3,
        worker_instance_types=("c1.medium",),
    )
    assert dom.worker_types("m1.small") == ("c1.medium", "m1.small", "m1.small")
    with pytest.raises(TopologyError, match="more worker-instance-types"):
        DomainSpec(
            name="d", condor=True, cluster_nodes=1,
            worker_instance_types=("a", "b"),
        ).worker_types("m1.small")


def test_with_extra_worker_adds_typed_worker():
    topo = paper_topology()
    bigger = with_extra_worker(topo, "simple", "c1.medium")
    dom = bigger.domain("simple")
    assert dom.cluster_nodes == 3
    plan = {n.name: n for n in bigger.node_plan()}
    assert plan["simple-condor-wn3"].instance_type == "c1.medium"
    # original untouched (frozen dataclasses)
    assert topo.domain("simple").cluster_nodes == 2


def test_diff_added_worker_and_users():
    old = paper_topology()
    new = with_extra_worker(old, "simple", "c1.medium")
    from dataclasses import replace

    new = replace(
        new,
        domains=tuple(
            replace(d, users=d.users + ("boliu",)) for d in new.domains
        ),
    )
    diff = diff_topologies(old, new)
    assert [n.name for n in diff.added_nodes] == ["simple-condor-wn3"]
    assert diff.added_users == ["boliu"]
    assert not diff.removed_nodes
    assert not diff.empty


def test_diff_type_change():
    old = paper_topology()
    from dataclasses import replace

    new = replace(
        old,
        domains=tuple(
            replace(d, worker_instance_types=("m1.large",)) for d in old.domains
        ),
    )
    diff = diff_topologies(old, new)
    assert diff.type_changes == {"simple-condor-wn1": ("t1.micro", "m1.large")}


def test_diff_identical_is_empty():
    topo = paper_topology()
    assert diff_topologies(topo, topo).empty


def test_diff_rejects_runlist_changes():
    old = paper_topology()
    from dataclasses import replace

    new = replace(
        old,
        domains=tuple(replace(d, crdata=True) for d in old.domains),
    )
    with pytest.raises(TopologyError, match="not supported"):
        diff_topologies(old, new)


@given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6))
def test_property_diff_worker_counts(old_n, new_n):
    def topo(n):
        return Topology(
            domains=(DomainSpec(name="d", condor=True, galaxy=True, cluster_nodes=n),)
        )

    diff = diff_topologies(topo(old_n), topo(new_n))
    assert len(diff.added_nodes) == max(0, new_n - old_n)
    assert len(diff.removed_nodes) == max(0, old_n - new_n)
