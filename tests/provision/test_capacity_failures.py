"""EC2 capacity-failure injection and GP's launch retries."""

import pytest

from repro.cloud import InsufficientCapacity, MockEC2
from repro.core import CloudTestbed, usecase_topology
from repro.provision import DeploymentError, GlobusProvision
from repro.simcore import SimContext


def test_capacity_error_raised_at_configured_rate():
    ctx = SimContext(seed=70)
    ec2 = MockEC2(ctx, capacity_error_rate=0.999)
    with pytest.raises(InsufficientCapacity):
        ec2.run_instances("ami-b12ee0d8", "m1.small")


def test_invalid_rate_rejected():
    with pytest.raises(ValueError):
        MockEC2(SimContext(seed=0), capacity_error_rate=1.0)


def test_deployer_retries_through_transient_capacity_errors():
    """A 30% failure rate is absorbed by the launch retry loop."""
    bed = CloudTestbed(seed=74, capacity_error_rate=0.3)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=2))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    assert gpi.state.value == "Running"
    assert len(gpi.deployment.nodes) == 5
    # at least one capacity error actually fired (and was retried)
    errors = bed.ctx.trace.filter(kind="capacity-error")
    assert len(errors) >= 1


def test_deployer_gives_up_after_persistent_capacity_errors():
    bed = CloudTestbed(seed=72, capacity_error_rate=0.98)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    with pytest.raises(DeploymentError, match="capacity errors persisted"):
        bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    assert gpi.state.value == "New"  # rolled back to creatable state
