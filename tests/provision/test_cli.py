"""The gp-instance CLI: the paper's command workflow (Sec. V-A)."""

import json

import pytest

from repro.provision import PAPER_GALAXY_CONF, Topology, with_extra_worker
from repro.provision.cli import main


@pytest.fixture
def home(tmp_path, monkeypatch):
    monkeypatch.setenv("GP_SIM_HOME", str(tmp_path / "gp-sim"))
    conf = tmp_path / "galaxy.conf"
    # m1.small for speed parity with the paper's small runs
    conf.write_text(PAPER_GALAXY_CONF.replace("t1.micro", "m1.small"))
    return tmp_path


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def create_instance(home, capsys):
    code, out, _ = run_cli(capsys, "create", "-c", str(home / "galaxy.conf"))
    assert code == 0
    return out.strip().split()[-1]


def test_create_prints_instance_id(home, capsys):
    gpi_id = create_instance(home, capsys)
    assert gpi_id.startswith("gpi-")


def test_create_bad_file(home, capsys):
    code, _, err = run_cli(capsys, "create", "-c", str(home / "nope.conf"))
    assert code == 1
    assert "error" in err


def test_start_and_describe(home, capsys):
    gpi_id = create_instance(home, capsys)
    code, out, _ = run_cli(capsys, "start", gpi_id)
    assert code == 0
    assert f"Starting instance {gpi_id}... done!" in out
    assert "simulated deployment time" in out

    code, out, _ = run_cli(capsys, "describe", gpi_id)
    assert code == 0
    doc = json.loads(out)
    assert doc["state"] == "Running"
    names = {h["name"] for h in doc["hosts"]}
    assert "simple-galaxy-condor" in names
    assert doc["galaxy_url"].startswith("http://")


def test_start_unknown_instance(home, capsys):
    code, _, err = run_cli(capsys, "start", "gpi-ffffffff")
    assert code == 1 and "no such instance" in err


def test_double_start_rejected(home, capsys):
    gpi_id = create_instance(home, capsys)
    run_cli(capsys, "start", gpi_id)
    code, _, err = run_cli(capsys, "start", gpi_id)
    assert code == 1 and "Running" in err


def test_update_adds_host(home, capsys):
    gpi_id = create_instance(home, capsys)
    run_cli(capsys, "start", gpi_id)
    old = Topology.from_conf((home / "galaxy.conf").read_text())
    new = with_extra_worker(old, "simple", "c1.medium")
    newfile = home / "newtopology.json"
    newfile.write_text(new.to_json())
    code, out, _ = run_cli(capsys, "update", "-t", str(newfile), gpi_id)
    assert code == 0
    assert "simple-condor-wn3" in out

    code, out, _ = run_cli(capsys, "describe", gpi_id)
    doc = json.loads(out)
    wn3 = next(h for h in doc["hosts"] if h["name"] == "simple-condor-wn3")
    assert wn3["instance_type"] == "c1.medium"


def test_update_requires_running(home, capsys):
    gpi_id = create_instance(home, capsys)
    newfile = home / "t.json"
    newfile.write_text(
        Topology.from_conf((home / "galaxy.conf").read_text()).to_json()
    )
    code, _, err = run_cli(capsys, "update", "-t", str(newfile), gpi_id)
    assert code == 1 and "New" in err


def test_stop_resume_terminate_cycle(home, capsys):
    gpi_id = create_instance(home, capsys)
    run_cli(capsys, "start", gpi_id)
    code, out, _ = run_cli(capsys, "stop", gpi_id)
    assert code == 0 and "Stopping" in out
    code, out, _ = run_cli(capsys, "start", gpi_id)  # resume
    assert code == 0 and "Resuming" in out
    code, out, _ = run_cli(capsys, "terminate", gpi_id)
    assert code == 0 and "Terminating" in out
    # terminated instances cannot be resumed (Fig. 1 step 6)
    code, _, err = run_cli(capsys, "start", gpi_id)
    assert code == 1 and "Terminated" in err


def test_ssh_subcommand(home, capsys):
    gpi_id = create_instance(home, capsys)
    run_cli(capsys, "start", gpi_id)
    code, out, _ = run_cli(
        capsys, "ssh", gpi_id, "simple-galaxy-condor", "-u", "user1", "-c", "whoami"
    )
    assert code == 0
    assert out.strip() == "user1"
    code, _, err = run_cli(
        capsys, "ssh", gpi_id, "simple-galaxy-condor", "-u", "nobody"
    )
    assert code == 1 and "Permission denied" in err


def test_list(home, capsys):
    code, out, _ = run_cli(capsys, "list")
    assert "(no instances)" in out
    a = create_instance(home, capsys)
    b = create_instance(home, capsys)
    code, out, _ = run_cli(capsys, "list")
    assert a in out and b in out
    assert a != b
