"""The storage= axis through topology, deployer, and Galaxy wiring."""

import pytest

from repro.core import CloudTestbed, usecase_topology
from repro.provision import GlobusProvision, Topology, TopologyError, with_extra_worker
from repro.provision.topology import DomainSpec
from repro.waas import waas_topology


def deploy(bed, topology):
    gp = GlobusProvision(bed)
    gpi = gp.create(topology)

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return gp, gpi


def deploy_storage(storage):
    bed = CloudTestbed(seed=2)
    gp, gpi = deploy(bed, usecase_topology("m1.small", 1, storage=storage))
    return bed, gp, gpi


# -- spec validation -------------------------------------------------------
def test_domainspec_rejects_unknown_backend():
    with pytest.raises(TopologyError, match="unknown storage backend"):
        DomainSpec(name="d", users=("u",), storage="ceph")


def test_domainspec_rejects_negative_storage_nodes():
    with pytest.raises(TopologyError, match="storage-nodes"):
        DomainSpec(name="d", users=("u",), storage="striped_fs", storage_nodes=-1)


def test_storage_nodes_require_striped_fs():
    with pytest.raises(TopologyError, match="striped_fs"):
        DomainSpec(name="d", users=("u",), storage="nfs", storage_nodes=2)


def test_stripe_data_nodes_defaults():
    assert DomainSpec(name="d", users=("u",)).stripe_data_nodes() == 0
    striped = DomainSpec(name="d", users=("u",), storage="striped_fs")
    assert striped.stripe_data_nodes() == 2
    sized = DomainSpec(
        name="d", users=("u",), storage="striped_fs", storage_nodes=3
    )
    assert sized.stripe_data_nodes() == 3


# -- serialisation ---------------------------------------------------------
def test_to_doc_records_the_storage_axis():
    doc = usecase_topology(storage="striped_fs", storage_nodes=3).to_doc()
    assert doc["domains"][0]["storage"] == "striped_fs"
    assert doc["domains"][0]["storage_nodes"] == 3


def test_from_json_roundtrips_storage():
    topology = usecase_topology(storage="object_store")
    again = Topology.from_json(topology.to_json())
    assert again.domain("simple").storage == "object_store"
    assert again.domain("simple").storage_nodes == 0


def test_from_conf_parses_storage_keys():
    topology = Topology.from_conf(
        "[general]\ndomains: simple\n\n"
        "[domain-simple]\nusers: boliu\nstorage: striped_fs\nstorage-nodes: 3\n"
    )
    dom = topology.domain("simple")
    assert dom.storage == "striped_fs" and dom.storage_nodes == 3


def test_from_conf_defaults_to_nfs():
    topology = Topology.from_conf(
        "[general]\ndomains: simple\n\n[domain-simple]\nusers: boliu\n"
    )
    assert topology.domain("simple").storage == "nfs"


def test_waas_topology_carries_storage():
    topology = waas_topology(2, storage="striped_fs", storage_nodes=3)
    dom = topology.domain("waas")
    assert dom.storage == "striped_fs" and dom.storage_nodes == 3


# -- deployment wiring -----------------------------------------------------
def test_nfs_workers_share_the_namespace():
    _, _, gpi = deploy_storage("nfs")
    dep = gpi.deployment
    dep.node("simple-galaxy-condor").vfs.write("/home/boliu/x.dat", data=b"x")
    assert dep.node("simple-condor-wn1").vfs.read("/home/boliu/x.dat") == b"x"
    assert gpi.deployment.domains["simple"].storage.name == "nfs"


@pytest.mark.parametrize("storage", ["object_store", "local_staging"])
def test_non_posix_backends_leave_workers_unmounted(storage):
    _, _, gpi = deploy_storage(storage)
    dep = gpi.deployment
    assert dep.node("simple-condor-wn1").vfs.mounts == []
    # the Galaxy head and GridFTP gateway still see the shared tree
    assert dep.node("simple-galaxy-condor").vfs.mounts
    assert dep.node("simple-gridftp").vfs.mounts


def test_striped_fs_adds_converged_data_nodes():
    _, _, gpi = deploy_storage("striped_fs")
    dep = gpi.deployment
    d1 = dep.node("simple-stripe-d1")
    d2 = dep.node("simple-stripe-d2")
    for node in (d1, d2):
        assert node.has_role("stripe-data")
        assert "parallel-fs-server" in node.chef.installed_software
        # stripe servers hold stripes, not the namespace, and run no jobs
        assert node.vfs.mounts == []
    runtime = dep.domains["simple"]
    assert "simple-stripe-d1" not in runtime.pool.startds
    # workers still mount the parallel namespace
    assert dep.node("simple-condor-wn1").vfs.mounts


def test_galaxy_jobs_get_the_backend():
    _, _, gpi = deploy_storage("object_store")
    app = gpi.deployment.galaxy
    assert app.jobs.storage is gpi.deployment.domains["simple"].storage
    assert app.jobs.storage.name == "object_store"


def test_elastic_update_preserves_the_storage_axis():
    bed, gp, gpi = deploy_storage("object_store")
    new_topology = with_extra_worker(gpi.topology, "simple", "c1.medium")
    assert new_topology.domain("simple").storage == "object_store"

    def scenario():
        yield from gp.update(gpi.id, new_topology)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    added = gpi.deployment.node("simple-condor-wn2")
    # the new worker honours the backend's wiring policy: no shared mount
    assert added.vfs.mounts == []
    assert "simple-condor-wn2" in gpi.deployment.domains["simple"].pool.startds
