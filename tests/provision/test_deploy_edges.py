"""Deployment edge configurations."""

import pytest

from repro.core import CloudTestbed
from repro.galaxy import JobState
from repro.provision import (
    DeploymentError,
    DomainSpec,
    EC2Spec,
    GlobusProvision,
    Topology,
)
from repro.workloads import make_expression_matrix_bytes


def deploy(bed, topology):
    gp = GlobusProvision(bed)
    gpi = gp.create(topology)

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return gp, gpi


def test_galaxy_without_condor_runs_jobs_locally():
    """condor: no  ->  jobs execute on the Galaxy head itself."""
    bed = CloudTestbed(seed=90)
    topo = Topology(
        domains=(
            DomainSpec(name="solo", users=("boliu",), galaxy=True, crdata=True),
        ),
        ec2=EC2Spec(instance_type="c1.medium"),
    )
    gp, gpi = deploy(bed, topo)
    app = gpi.deployment.galaxy
    h = app.create_history("boliu")
    ds = app.upload_data(h, "m.tsv", data=make_expression_matrix_bytes(), ext="tabular")
    job = app.run_tool("boliu", h, "crdata_matrixTTest", inputs=[ds])
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK
    assert job.machine == "solo-galaxy-condor"


def test_condor_requested_with_zero_workers_falls_back_to_local():
    bed = CloudTestbed(seed=91)
    topo = Topology(
        domains=(
            DomainSpec(
                name="d", users=("boliu",), galaxy=True, condor=True,
                crdata=True, cluster_nodes=0,
            ),
        ),
        ec2=EC2Spec(instance_type="m1.small"),
    )
    gp, gpi = deploy(bed, topo)
    app = gpi.deployment.galaxy
    h = app.create_history("boliu")
    ds = app.upload_data(h, "m.tsv", data=make_expression_matrix_bytes(), ext="tabular")
    job = app.run_tool("boliu", h, "crdata_matrixTTest", inputs=[ds])
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK
    assert job.machine == "d-galaxy-condor"


def test_gridftp_only_domain_has_endpoint_but_no_galaxy():
    bed = CloudTestbed(seed=92)
    topo = Topology(
        domains=(
            DomainSpec(
                name="dtn", users=("boliu",), gridftp=True,
                go_endpoint="boliu#dtn",
            ),
        ),
    )
    gp, gpi = deploy(bed, topo)
    dep = gpi.deployment
    assert dep.endpoint_name == "boliu#dtn"
    assert "boliu#dtn" in bed.go.endpoints
    with pytest.raises(DeploymentError, match="no Galaxy"):
        _ = dep.galaxy


def test_nfs_only_minimal_domain():
    bed = CloudTestbed(seed=93)
    topo = Topology(domains=(DomainSpec(name="store", users=("boliu",)),))
    gp, gpi = deploy(bed, topo)
    assert set(gpi.deployment.nodes) == {"store-server"}
    assert "boliu" in gpi.deployment.domains["store"].nis
