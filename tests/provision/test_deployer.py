"""Deployment engine: full deploys, updates, lifecycle."""

import pytest

from repro.cloud import InstanceState
from repro.core import CloudTestbed, usecase_topology
from repro.provision import (
    Deployer,
    DeploymentError,
    GlobusProvision,
    GPError,
    GPInstanceState,
    TopologyError,
    with_extra_worker,
)


def deploy(bed, topology):
    gp = GlobusProvision(bed)
    gpi = gp.create(topology)

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return gp, gpi


@pytest.fixture
def bed():
    return CloudTestbed(seed=2)


@pytest.fixture
def running(bed):
    gp, gpi = deploy(bed, usecase_topology("m1.small", cluster_nodes=1))
    return bed, gp, gpi


def test_deploy_creates_planned_nodes(running):
    bed, gp, gpi = running
    dep = gpi.deployment
    assert set(dep.nodes) == {
        "simple-server", "simple-galaxy-condor", "simple-gridftp",
        "simple-condor-wn1",
    }
    assert all(
        n.instance.state == InstanceState.RUNNING for n in dep.nodes.values()
    )
    assert gpi.state == GPInstanceState.RUNNING
    assert gpi.start_seconds and gpi.start_seconds > 300


def test_deploy_converges_software(running):
    _, _, gpi = running
    head = gpi.deployment.node("simple-galaxy-condor")
    assert "galaxy" in head.chef.installed_software
    assert "R" in head.chef.installed_software
    worker = gpi.deployment.node("simple-condor-wn1")
    assert "R" in worker.chef.installed_software
    assert worker.chef.services.get("condor") == "running"


def test_deploy_wires_nfs_shared_namespace(running):
    _, _, gpi = running
    dep = gpi.deployment
    head = dep.node("simple-galaxy-condor")
    worker = dep.node("simple-condor-wn1")
    head.vfs.write("/home/galaxy/database/files/shared.dat", data=b"x")
    assert worker.vfs.read("/home/galaxy/database/files/shared.dat") == b"x"


def test_deploy_wires_users_and_nis(running):
    _, _, gpi = running
    dep = gpi.deployment
    runtime = dep.domains["simple"]
    assert "boliu" in runtime.nis
    assert "user2" in runtime.nis
    worker = dep.node("simple-condor-wn1")
    assert "boliu" in worker.nis


def test_deploy_creates_go_endpoint_and_galaxy_users(running):
    bed, _, gpi = running
    dep = gpi.deployment
    assert dep.endpoint_name == "cvrg#galaxy"
    assert "cvrg#galaxy" in bed.go.endpoints
    app = dep.galaxy
    assert "boliu" in app.users
    assert app.users["boliu"].globus_username == "boliu"
    assert len(app.toolbox) >= 38  # 3 globus tools + 35 crdata tools


def test_galaxy_condor_runner_uses_workers(running):
    bed, _, gpi = running
    dep = gpi.deployment
    app = dep.galaxy
    h = app.create_history("boliu")
    ds = app.upload_data(h, "m.tsv", data=__import__(
        "repro.workloads", fromlist=["x"]).make_expression_matrix_bytes(),
        ext="tabular")
    job = app.run_tool("boliu", h, "crdata_matrixTTest", inputs=[ds])
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state.value == "ok"
    assert job.machine == "simple-condor-wn1"


def test_update_adds_worker_quickly(running):
    bed, gp, gpi = running
    new_topo = with_extra_worker(gpi.topology, "simple", "c1.medium")
    holder = {}

    def scenario():
        holder["report"] = yield from gp.update(gpi.id, new_topo)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    report = holder["report"]
    assert report.added == ["simple-condor-wn2"]
    # "within minutes" (Sec. III-C)
    assert report.seconds < 10 * 60
    node = gpi.deployment.node("simple-condor-wn2")
    assert node.instance_type == "c1.medium"
    assert "simple-condor-wn2" in gpi.deployment.pool.startds


def test_update_removes_worker_and_terminates_instance(running):
    bed, gp, gpi = running
    from dataclasses import replace

    topo = gpi.topology
    new_topo = replace(
        topo,
        domains=tuple(replace(d, cluster_nodes=0) for d in topo.domains),
    )
    old_instance = gpi.deployment.node("simple-condor-wn1").instance

    def scenario():
        yield from gp.update(gpi.id, new_topo)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    assert "simple-condor-wn1" not in gpi.deployment.nodes
    assert old_instance.state in (
        InstanceState.SHUTTING_DOWN, InstanceState.TERMINATED
    )
    assert gpi.deployment.pool.total_slots == 0


def test_update_retypes_worker(running):
    bed, gp, gpi = running
    from dataclasses import replace

    topo = gpi.topology
    new_topo = replace(
        topo,
        domains=tuple(
            replace(d, worker_instance_types=("m1.large",)) for d in topo.domains
        ),
    )

    def scenario():
        yield from gp.update(gpi.id, new_topo)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    node = gpi.deployment.node("simple-condor-wn1")
    assert node.instance_type == "m1.large"
    assert gpi.deployment.pool.startds["simple-condor-wn1"].machine.cpu_factor == pytest.approx(2.83)


def test_update_rejects_head_node_changes(running):
    bed, gp, gpi = running
    from dataclasses import replace

    # shrinking to no galaxy would remove the head: unsupported at runtime
    new_topo = replace(
        gpi.topology,
        domains=tuple(
            replace(d, galaxy=False, crdata=False) for d in gpi.topology.domains
        ),
    )

    def scenario():
        yield from gp.update(gpi.id, new_topo)

    with pytest.raises(TopologyError, match="not supported"):
        bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))


def test_added_user_gets_accounts_everywhere(running):
    bed, gp, gpi = running
    from dataclasses import replace

    new_topo = replace(
        gpi.topology,
        domains=tuple(
            replace(d, users=d.users + ("newbie",)) for d in gpi.topology.domains
        ),
    )

    def scenario():
        yield from gp.update(gpi.id, new_topo)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    assert "newbie" in gpi.deployment.domains["simple"].nis
    assert "newbie" in gpi.deployment.galaxy.users
    assert "newbie" in bed.go.users
    assert "newbie" in bed.myproxy


def test_stop_pauses_billing_and_resume_restores(running):
    bed, gp, gpi = running
    gp.stop(gpi.id)
    assert gpi.state == GPInstanceState.STOPPED
    cost_at_stop = bed.total_cost()
    # a day passes while stopped
    bed.ctx.sim.run(until=bed.ctx.now + 86400.0)
    assert bed.total_cost() == pytest.approx(cost_at_stop, rel=1e-9)

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    assert gpi.state == GPInstanceState.RUNNING
    assert all(
        n.instance.state == InstanceState.RUNNING
        for n in gpi.deployment.nodes.values()
    )


def test_terminate_is_final(running):
    bed, gp, gpi = running
    gp.terminate(gpi.id)
    assert gpi.state == GPInstanceState.TERMINATED
    bed.ctx.sim.run()
    assert all(
        n.instance.state == InstanceState.TERMINATED
        for n in gpi.deployment.nodes.values()
    )
    with pytest.raises(GPError):
        gp.stop(gpi.id)


def test_update_requires_running(running):
    bed, gp, gpi = running
    gp.stop(gpi.id)

    def scenario():
        yield from gp.update(gpi.id, gpi.topology)

    with pytest.raises(GPError, match="cannot update"):
        bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))


def test_deployment_time_decreases_with_instance_size():
    times = {}
    for itype in ("m1.small", "c1.medium", "m1.xlarge"):
        bed = CloudTestbed(seed=3)
        _, gpi = deploy(bed, usecase_topology(itype, cluster_nodes=1))
        times[itype] = gpi.start_seconds
    assert times["m1.xlarge"] < times["c1.medium"] < times["m1.small"]


def test_preloaded_custom_ami_deploys_much_faster():
    """Fig. 1 step 8: snapshotting a converged head cuts redeploy time."""
    bed = CloudTestbed(seed=4)
    topo = usecase_topology("m1.small", cluster_nodes=1)
    gp, gpi = deploy(bed, topo)
    baseline = gpi.start_seconds
    ami = gp.deployer.create_custom_ami(
        gpi.deployment, "simple-galaxy-condor", "galaxy-preloaded"
    )

    from dataclasses import replace

    topo2 = replace(topo, ec2=replace(topo.ec2, ami=ami.id))
    _, gpi2 = deploy(bed, topo2)
    assert gpi2.start_seconds < baseline * 0.5
