"""Shared fixtures: one tiny captured run, bundled once per session.

The tiny scale config deploys a 5-node topology and pushes a couple of
transfers/jobs through it in ~10 ms, which is enough to exercise every
bundle section (topology annotations, span log, seeds, sim payload).
"""

import pytest

from repro.bench.harness import BenchSpec, BenchSuite, run_suite
from repro.provenance import build_bundle

TINY_PARAMS = {
    "workers": 2,
    "transfers": 2,
    "jobs": 4,
    "file_mb": 2,
    "instance_type": "m1.small",
    "seed": 0,
}


def tiny_suite(**param_overrides) -> BenchSuite:
    params = {**TINY_PARAMS, **param_overrides}
    spec = BenchSpec(name="scale/tiny", task="scale.run", params=params)
    return BenchSuite("tiny", "provenance fixture suite", (spec,))


@pytest.fixture(scope="session")
def tiny_result():
    result = run_suite(tiny_suite(), workers=1, obs=True)
    assert result.ok
    return result


@pytest.fixture(scope="session")
def tiny_bundle(tiny_result):
    return build_bundle(tiny_result)
