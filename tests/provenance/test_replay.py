"""Replay: byte-identity across the scheduler/dispatch matrix,
counterfactual comparisons, override parsing, and the gp-replay CLI."""

import json

import pytest

from repro.bench.harness import run_suite
from repro.provenance import (
    BundleError,
    build_bundle,
    parse_overrides,
    rebuild_suite,
    replay,
    write_bundle,
)
from repro.provenance.cli import main

from .conftest import tiny_suite


@pytest.mark.parametrize("scheduler", ["heap", "wheel"])
@pytest.mark.parametrize("dispatch", ["scalar", "cohort"])
def test_replay_is_byte_identical_across_matrix(scheduler, dispatch):
    result = run_suite(
        tiny_suite(), obs=True, scheduler=scheduler, dispatch=dispatch
    )
    bundle = build_bundle(result)
    assert bundle.scenario["scheduler"] == scheduler
    assert bundle.scenario["dispatch"] == dispatch
    report = replay(bundle)
    assert report.mode == "verify"
    assert report.verified is True
    assert report.divergence is None
    assert report.scheduler == scheduler
    assert report.dispatch == dispatch


def test_rebuild_suite_reapplies_seeds(tiny_bundle):
    suite = rebuild_suite(tiny_bundle)
    assert suite.name == "tiny"
    assert suite.specs[0].params["seed"] == 0
    assert suite.specs[0].task == "scale.run"


def test_rebuild_suite_applies_param_overrides(tiny_bundle):
    suite = rebuild_suite(
        tiny_bundle, {"seed": 7, "instance_type": "c1.medium"}
    )
    assert suite.specs[0].params["seed"] == 7
    assert suite.specs[0].params["instance_type"] == "c1.medium"


def test_rebuild_suite_rejects_malformed_scenario(tiny_bundle):
    import dataclasses

    broken = dataclasses.replace(tiny_bundle, scenario={"suite": "x"})
    with pytest.raises(BundleError) as exc:
        rebuild_suite(broken)
    assert exc.value.code == "scenario.malformed"

    empty = dataclasses.replace(
        tiny_bundle, scenario={**tiny_bundle.scenario, "specs": []}
    )
    with pytest.raises(BundleError) as exc:
        rebuild_suite(empty)
    assert exc.value.code == "scenario.malformed"


def test_counterfactual_instance_type_reports_deltas(tiny_bundle):
    report = replay(tiny_bundle, overrides={"instance_type": "c1.medium"})
    assert report.mode == "counterfactual"
    assert report.replay_ok
    assert report.comparison, "expected per-metric delta rows"
    metrics = {row["metric"] for row in report.comparison}
    assert any(m.startswith("scale/tiny:") for m in metrics)
    assert any(m.endswith("sim_seconds") for m in metrics)
    # a faster instance type must actually move the makespan
    assert any(
        row["delta"] != 0
        for row in report.comparison
        if row["metric"].endswith(":sim_seconds")
    )
    assert "counterfactual" in report.render()


def test_counterfactual_scheduler_is_an_equivalence_proof(tiny_bundle):
    report = replay(tiny_bundle, overrides={"scheduler": "wheel"})
    assert report.mode == "counterfactual"
    assert report.scheduler == "wheel"
    assert all(row["delta"] == 0 for row in report.comparison)


def test_counterfactual_seed_changes_outcome(tiny_bundle):
    report = replay(tiny_bundle, overrides={"seed": 3})
    assert report.mode == "counterfactual"
    assert report.replay_ok


def test_replay_report_round_trips_through_json(tiny_bundle):
    report = replay(tiny_bundle)
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["mode"] == "verify"
    assert doc["verified"] is True
    assert doc["tasks"] == 1


def test_parse_overrides():
    assert parse_overrides([]) == {}
    assert parse_overrides(["seed=5", "scheduler=wheel"]) == {
        "seed": 5,
        "scheduler": "wheel",
    }
    for bad in ["nonsense", "=x", "seed=", "warp_factor=9"]:
        with pytest.raises(BundleError) as exc:
            parse_overrides([bad])
        assert exc.value.code == "override.unknown"


@pytest.fixture()
def bundle_path(tiny_bundle, tmp_path):
    return write_bundle(tiny_bundle, tmp_path / "tiny.bundle.json")


def test_cli_verify_exit_zero(bundle_path, capsys):
    assert main([str(bundle_path)]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_cli_check_only(bundle_path, capsys):
    assert main([str(bundle_path), "--check-only"]) == 0
    out = capsys.readouterr().out
    assert "bundle ok" in out
    assert "1 spec(s)" in out


def test_cli_export_sim_matches_bundled_sim(bundle_path, tiny_bundle, tmp_path):
    sim_path = tmp_path / "sim.json"
    code = main(
        [str(bundle_path), "--check-only", "--export-sim", str(sim_path), "-q"]
    )
    assert code == 0
    assert sim_path.read_text() == tiny_bundle.sim_json() + "\n"


def test_cli_json_out_report(bundle_path, tmp_path):
    report_path = tmp_path / "report.json"
    assert main([str(bundle_path), "--json-out", str(report_path), "-q"]) == 0
    doc = json.loads(report_path.read_text())
    assert doc["verified"] is True
    assert doc["divergence"] is None


def test_cli_counterfactual_exit_zero(bundle_path, capsys):
    code = main([str(bundle_path), "--override", "instance_type=c1.medium"])
    assert code == 0
    assert "counterfactual" in capsys.readouterr().out


def test_cli_bad_override_exit_two(bundle_path, capsys):
    assert main([str(bundle_path), "--override", "warp=9"]) == 2
    err = json.loads(capsys.readouterr().err)
    assert err["error"]["code"] == "override.unknown"


def test_cli_missing_bundle_exit_three(tmp_path, capsys):
    assert main([str(tmp_path / "absent.bundle.json")]) == 3
    err = json.loads(capsys.readouterr().err)
    assert err["error"]["code"] == "bundle.unreadable"


# -- trace-diff localization: name the span that moved ----------------------


def _tampered_bundle_path(bundle, tmp_path, mutate):
    """Write the bundle, apply ``mutate(sections)``, re-digest, rewrite."""
    from repro.provenance.bundle import content_digest

    path = write_bundle(bundle, tmp_path / "tampered.bundle.json")
    doc = json.loads(path.read_text())
    mutate(doc["sections"])
    for name, section in doc["sections"].items():
        doc["section_digests"][name] = content_digest(section)
    doc["digest"] = content_digest(doc["section_digests"])
    path.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return path


def test_replay_names_the_span_that_moved(tiny_bundle, tmp_path):
    from repro.provenance import read_bundle

    def shift_first_condor_wait(sections):
        spans = [
            s for d in sections["spans"] for s in d["spans"]
            if s["name"] == "condor.wait"
        ]
        spans[0]["start"] -= 1.5

    path = _tampered_bundle_path(tiny_bundle, tmp_path, shift_first_condor_wait)
    report = replay(read_bundle(path))
    assert report.verified is False
    div = report.span_divergence
    assert div is not None
    assert div.name == "condor.wait"
    assert div.track.startswith("condor/")
    assert div.field == "start"
    assert div.actual == div.expected + 1.5
    rendered = report.render()
    assert "DIVERGED" in rendered
    assert "condor.wait" in rendered
    assert div.track in rendered
    assert f"t={div.time:g}s" in rendered


def test_spans_only_tamper_still_fails_verification(tiny_bundle, tmp_path):
    """Sim JSON byte-equal but spans differ -> DIVERGED, never a pass."""
    from repro.provenance import read_bundle

    def drop_last_span(sections):
        sections["spans"][0]["spans"].pop()

    path = _tampered_bundle_path(tiny_bundle, tmp_path, drop_last_span)
    report = replay(read_bundle(path))
    assert report.verified is False
    assert report.span_divergence is not None
    assert report.span_divergence.field == "<missing>"
    # the numeric sim compare saw nothing wrong; the span diff did
    assert report.divergence is None


def test_cli_reports_span_divergence_and_exit_one(tiny_bundle, tmp_path, capsys):
    def shift_boot(sections):
        spans = [
            s for d in sections["spans"] for s in d["spans"]
            if s["name"] == "ec2.boot"
        ]
        spans[0]["end"] += 2.0

    path = _tampered_bundle_path(tiny_bundle, tmp_path, shift_boot)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "first diverging span" in out
    assert "ec2.boot" in out
