"""Property tests: bundles round-trip losslessly and replay byte-identically.

Two layers: a cheap serialization property over arbitrary JSON-shaped
sections (many examples), and an end-to-end property that actually runs a
random tiny scenario through the harness, bundles it, and replays it
(few examples — each one is two full simulations).
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.harness import run_suite
from repro.provenance import ProvenanceBundle, build_bundle, replay, verify_bundle
from repro.provenance.bundle import calibration_section

from .conftest import tiny_suite

pytestmark = pytest.mark.bench

# JSON-safe leaves: ints, finite floats that survive a round trip, strings
_leaves = (
    st.integers(min_value=-(10**9), max_value=10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12)
    | st.booleans()
    | st.none()
)
_json_docs = st.recursive(
    _leaves,
    lambda inner: st.lists(inner, max_size=3)
    | st.dictionaries(st.text(max_size=8), inner, max_size=3),
    max_leaves=8,
)


@given(
    scenario=st.dictionaries(st.text(max_size=8), _json_docs, max_size=3),
    seeds=st.dictionaries(st.text(max_size=8), st.integers(0, 2**31), max_size=3),
    topology=st.lists(_json_docs, max_size=3),
    spans=st.lists(_json_docs, max_size=3),
    sim=st.dictionaries(st.text(max_size=8), _json_docs, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_serialization_round_trip_is_lossless(scenario, seeds, topology, spans, sim):
    bundle = ProvenanceBundle(
        calibration=calibration_section(),
        scenario=json.loads(json.dumps(scenario)),
        seeds=json.loads(json.dumps(seeds)),
        topology=json.loads(json.dumps(topology)),
        spans=json.loads(json.dumps(spans)),
        sim=json.loads(json.dumps(sim)),
    )
    loaded = ProvenanceBundle.from_dict(json.loads(bundle.to_json()))
    assert loaded == bundle
    assert loaded.to_json() == bundle.to_json()
    assert loaded.digest() == bundle.digest()
    verify_bundle(loaded)  # honest round-tripped bundles always verify


@given(
    workers=st.integers(1, 3),
    transfers=st.integers(1, 3),
    jobs=st.integers(1, 6),
    seed=st.integers(0, 3),
    scheduler=st.sampled_from(["heap", "wheel"]),
    dispatch=st.sampled_from(["scalar", "cohort"]),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_tiny_scenarios_replay_byte_identically(
    workers, transfers, jobs, seed, scheduler, dispatch
):
    suite = tiny_suite(workers=workers, transfers=transfers, jobs=jobs, seed=seed)
    result = run_suite(suite, obs=True, scheduler=scheduler, dispatch=dispatch)
    assert result.ok
    bundle = build_bundle(result)
    loaded = ProvenanceBundle.from_dict(json.loads(bundle.to_json()))
    assert loaded == bundle
    report = replay(loaded)
    assert report.verified is True, (
        f"replay diverged for {workers=} {transfers=} {jobs=} {seed=}"
        f" {scheduler=} {dispatch=}: {report.divergence}"
    )
