"""Mutation tests: every corruption is detected, with the right error.

The verifier's contract is attribution, not just rejection — corrupt a
section and the error names that section; tamper consistently (content
*and* digests recomputed) and detection moves to the next layer down
(calibration checks, then replay divergence).  Nothing here may pass
silently.
"""

import json

import pytest

from repro.provenance import (
    BundleError,
    ProvenanceBundle,
    verify_bundle,
    write_bundle,
)
from repro.provenance.bundle import SECTION_NAMES, content_digest
from repro.provenance.cli import main


def _doc(bundle) -> dict:
    return json.loads(bundle.to_json())


def _load(doc) -> ProvenanceBundle:
    return ProvenanceBundle.from_dict(json.loads(json.dumps(doc)))


def _rehash(doc) -> dict:
    """Recompute all digests, as a sophisticated tamperer would."""
    digests = {
        name: content_digest(section)
        for name, section in doc["sections"].items()
    }
    doc["section_digests"] = digests
    doc["digest"] = content_digest(digests)
    return doc


def _corrupt_section(doc, name):
    section = doc["sections"][name]
    if name == "calibration":
        section["constants"]["TAMPERED_CONSTANT"] = 42
    elif name == "scenario":
        section["specs"][0]["params"]["jobs"] += 1
    elif name == "seeds":
        section["scale/tiny"] = 99
    elif name == "topology":
        doc["sections"][name] = section + [{"kind": "topology", "attrs": {}}]
    elif name == "spans":
        doc["sections"][name] = section + [{"label": "forged", "spans": []}]
    elif name == "sim":
        section["tasks"][0]["payload"]["sim_seconds"] = 0.0
    return doc


@pytest.mark.parametrize("name", SECTION_NAMES)
def test_section_content_corruption_names_the_section(tiny_bundle, name):
    doc = _corrupt_section(_doc(tiny_bundle), name)
    with pytest.raises(BundleError) as exc:
        verify_bundle(_load(doc))
    assert exc.value.code == "bundle.section-digest"
    assert exc.value.section == name


@pytest.mark.parametrize("name", SECTION_NAMES)
def test_stored_section_digest_corruption_is_detected(tiny_bundle, name):
    doc = _doc(tiny_bundle)
    doc["section_digests"][name] = "0" * 64
    with pytest.raises(BundleError) as exc:
        verify_bundle(_load(doc))
    assert exc.value.code == "bundle.section-digest"
    assert exc.value.section == name


def test_top_digest_corruption_is_detected(tiny_bundle):
    doc = _doc(tiny_bundle)
    doc["digest"] = "f" * 64
    with pytest.raises(BundleError) as exc:
        verify_bundle(_load(doc))
    assert exc.value.code == "bundle.digest"


def test_missing_section_digest_map_is_detected(tiny_bundle):
    doc = _doc(tiny_bundle)
    del doc["section_digests"]
    with pytest.raises(BundleError) as exc:
        verify_bundle(_load(doc))
    assert exc.value.code == "bundle.section-digest"


def test_calibration_internal_inconsistency_survives_rehash(tiny_bundle):
    # tamper with the constants but leave the section's own digest claim:
    # outer digests recomputed, so detection falls to the internal check
    doc = _doc(tiny_bundle)
    doc["sections"]["calibration"]["constants"]["EC2_PROVISION_MEAN_S"] = 1e9
    _rehash(doc)
    with pytest.raises(BundleError) as exc:
        verify_bundle(_load(doc))
    assert exc.value.code == "calibration.internal"


def test_calibration_drift_fully_consistent_tamper(tiny_bundle):
    # the fully consistent forgery: constants changed AND the section's
    # own digest updated AND outer digests recomputed — only comparison
    # against the live code can catch it
    doc = _doc(tiny_bundle)
    cal = doc["sections"]["calibration"]
    cal["constants"]["FORGED_CONSTANT"] = 123.0
    cal["digest"] = content_digest(cal["constants"])
    _rehash(doc)
    with pytest.raises(BundleError) as exc:
        verify_bundle(_load(doc))
    assert exc.value.code == "calibration.drift"
    assert "FORGED_CONSTANT" in str(exc.value)
    assert "FORGED_CONSTANT" in exc.value.detail["constants"]


def test_seed_tamper_with_rehash_diverges_at_replay(tiny_bundle, tmp_path, capsys):
    # change the seed everywhere it is recorded and recompute every
    # digest: the bundle verifies, but the replayed sim cannot reproduce
    # the bundled sim section — gp-replay exits 1 with a divergence
    doc = _doc(tiny_bundle)
    doc["sections"]["seeds"]["scale/tiny"] = 1
    doc["sections"]["scenario"]["specs"][0]["params"]["seed"] = 1
    _rehash(doc)
    tampered = _load(doc)
    verify_bundle(tampered)  # integrity holds; the lie is semantic
    path = write_bundle(tampered, tmp_path / "tampered.bundle.json")
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert "DIVERGED" in out
    assert "$." in out or "expected" in out


@pytest.mark.parametrize("name", SECTION_NAMES)
def test_cli_exit_three_on_any_section_corruption(tiny_bundle, tmp_path, capsys, name):
    doc = _corrupt_section(_doc(tiny_bundle), name)
    path = tmp_path / "corrupt.bundle.json"
    path.write_text(json.dumps(doc))
    assert main([str(path)]) == 3
    err = json.loads(capsys.readouterr().err)
    assert err["error"]["code"] == "bundle.section-digest"
    assert err["error"]["section"] == name


def test_cli_exit_three_on_truncated_file(tiny_bundle, tmp_path, capsys):
    path = tmp_path / "truncated.bundle.json"
    path.write_text(tiny_bundle.to_json()[: len(tiny_bundle.to_json()) // 2])
    assert main([str(path)]) == 3
    err = json.loads(capsys.readouterr().err)
    assert err["error"]["code"] == "bundle.unreadable"


def test_no_mutation_passes_silently(tiny_bundle):
    """The meta-check: every single-character digest flip is caught."""
    doc = _doc(tiny_bundle)
    good = doc["digest"]
    flipped = ("0" if good[0] != "0" else "1") + good[1:]
    doc["digest"] = flipped
    with pytest.raises(BundleError):
        verify_bundle(_load(doc))
