"""Bundle construction, serialization, and structural parsing."""

import json

import pytest

from repro import calibration
from repro.provenance import (
    BUNDLE_FORMAT,
    BUNDLE_VERSION,
    BundleError,
    ProvenanceBundle,
    build_bundle,
    read_bundle,
    write_bundle,
)
from repro.provenance.bundle import SECTION_NAMES, content_digest

from .conftest import tiny_suite


def test_build_bundle_sections(tiny_result, tiny_bundle):
    b = tiny_bundle
    assert b.calibration["digest"] == calibration.digest()
    assert b.calibration["constants"] == json.loads(
        json.dumps(calibration.snapshot())
    )
    assert b.scenario["suite"] == "tiny"
    assert b.scenario["scheduler"] == tiny_result.scheduler
    assert b.scenario["dispatch"] == tiny_result.dispatch
    assert [s["name"] for s in b.scenario["specs"]] == ["scale/tiny"]
    assert b.seeds == {"scale/tiny": 0}
    assert b.sim == json.loads(json.dumps(tiny_result.sim_dict()))
    assert b.spans, "captured run should carry obs docs"
    assert b.topology, "deployer should have annotated the topology"
    assert all(t["kind"] in ("topology", "topology-update") for t in b.topology)


def test_sim_json_matches_suite_result_byte_form(tiny_result, tiny_bundle):
    assert tiny_bundle.sim_json() == tiny_result.sim_json()


def test_digests_cover_every_section(tiny_bundle):
    digests = tiny_bundle.section_digests()
    assert tuple(sorted(digests)) == tuple(sorted(SECTION_NAMES))
    assert all(len(d) == 64 for d in digests.values())
    assert tiny_bundle.digest() == content_digest(digests)


def test_write_read_round_trip(tiny_bundle, tmp_path):
    path = write_bundle(tiny_bundle, tmp_path / "sub" / "tiny.bundle.json")
    loaded = read_bundle(path)
    assert loaded == tiny_bundle
    assert loaded.stored_digest == tiny_bundle.digest()
    assert loaded.stored_section_digests == tiny_bundle.section_digests()
    # serialization is canonical: re-writing reproduces the same bytes
    assert loaded.to_json() == tiny_bundle.to_json()


def test_bundles_of_identical_runs_are_byte_identical():
    from repro.bench.harness import run_suite

    a = build_bundle(run_suite(tiny_suite(), obs=True))
    b = build_bundle(run_suite(tiny_suite(), obs=True))
    assert a.to_json() == b.to_json()
    assert a.digest() == b.digest()


def test_uncaptured_run_bundles_without_spans_or_topology():
    from repro.bench.harness import run_suite

    bundle = build_bundle(run_suite(tiny_suite(), obs=False))
    assert bundle.spans == []
    assert bundle.topology == []
    assert bundle.seeds == {"scale/tiny": 0}


@pytest.mark.parametrize(
    "breakage, code",
    [
        (lambda d: d.update(format="not-a-bundle"), "bundle.format"),
        (lambda d: d.update(version=BUNDLE_VERSION + 1), "bundle.format"),
        (lambda d: d.pop("sections"), "bundle.section-missing"),
        (lambda d: d["sections"].pop("seeds"), "bundle.section-missing"),
    ],
)
def test_from_dict_structural_errors(tiny_bundle, breakage, code):
    doc = json.loads(tiny_bundle.to_json())
    breakage(doc)
    with pytest.raises(BundleError) as exc:
        ProvenanceBundle.from_dict(doc)
    assert exc.value.code == code


def test_from_dict_rejects_non_object():
    with pytest.raises(BundleError) as exc:
        ProvenanceBundle.from_dict(["nope"])
    assert exc.value.code == "bundle.format"


def test_format_constants_are_stamped(tiny_bundle):
    doc = json.loads(tiny_bundle.to_json())
    assert doc["format"] == BUNDLE_FORMAT
    assert doc["version"] == BUNDLE_VERSION


@pytest.mark.parametrize(
    "write, fragment",
    [
        (None, "cannot read"),
        (lambda p: p.write_text(""), "is empty"),
        (lambda p: p.write_text("   \n"), "is empty"),
        (lambda p: p.write_text('{"format": "gp-prov'), "not valid JSON"),
    ],
)
def test_read_bundle_unreadable_cases(tmp_path, write, fragment):
    path = tmp_path / "b.json"
    if write is not None:
        write(path)
    with pytest.raises(BundleError) as exc:
        read_bundle(path)
    assert exc.value.code == "bundle.unreadable"
    assert fragment in str(exc.value)


def test_bundle_error_to_dict_shape():
    err = BundleError("bundle.digest", "boom", section="sim", detail={"x": 1})
    doc = err.to_dict()["error"]
    assert doc == {
        "code": "bundle.digest",
        "section": "sim",
        "message": "boom",
        "detail": {"x": 1},
    }
