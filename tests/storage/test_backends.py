"""Unit tests for the pluggable shared-storage backends."""

import pytest

from repro import calibration
from repro.cluster.nfs import SimFilesystem
from repro.storage import (
    STORAGE_BACKENDS,
    LocalStagingBackend,
    NFSBackend,
    ObjectStore,
    ObjectStoreBackend,
    StagingStats,
    StorageError,
    StripedFSBackend,
    make_backend,
)

MB = 1024 * 1024
FILES = [("/home/galaxy/a.dat", 10 * MB), ("/home/galaxy/b.dat", 20 * MB)]


class FakeNode:
    """Just enough of a ClusterNode for should_mount decisions."""

    def __init__(self, *roles):
        self.roles = set(roles)

    def has_role(self, role):
        return role in self.roles


# -- factory ---------------------------------------------------------------
def test_factory_builds_every_registered_backend():
    for name in STORAGE_BACKENDS:
        assert make_backend(name).name == name


def test_factory_rejects_unknown_backend():
    with pytest.raises(StorageError, match="unknown storage backend"):
        make_backend("ceph")


def test_factory_defaults_striped_data_nodes_from_calibration():
    backend = make_backend("striped_fs")
    assert backend.data_nodes == calibration.STORAGE_STRIPE_DEFAULT_NODES
    assert make_backend("striped_fs", data_nodes=3).data_nodes == 3


def test_striped_backend_requires_a_data_node():
    with pytest.raises(StorageError, match="at least one data node"):
        StripedFSBackend(0)


def test_object_backend_requires_positive_parallelism():
    with pytest.raises(StorageError, match="parallelism"):
        make_backend("object_store", parallel=0)


# -- the keyed object store ------------------------------------------------
def test_object_store_put_get_roundtrip_and_counters():
    store = ObjectStore()
    store.put("a", 10)
    store.put("b", 20)
    assert store.get("a") == 10
    assert store.exists("b") and not store.exists("c")
    assert store.keys() == ["a", "b"]
    assert store.puts == 2 and store.gets == 1


def test_object_store_get_of_missing_key_raises():
    with pytest.raises(StorageError, match="no such object"):
        ObjectStore().get("nope")


def test_object_store_rejects_negative_sizes():
    with pytest.raises(StorageError):
        ObjectStore().put("a", -1)


def test_object_store_wave_model():
    store = ObjectStore()
    # one file: one wave of latency plus one connection's bandwidth
    one = store.transfer_seconds(1, 25_000_000, parallel=4)
    assert one == pytest.approx(
        calibration.STORAGE_OBJECT_REQUEST_S
        + 25_000_000 * 8.0 / (calibration.STORAGE_OBJECT_CONN_MBPS * 1e6)
    )
    # five files at parallel=4: two waves, bandwidth across four connections
    assert store.transfer_seconds(5, 0, parallel=4) == pytest.approx(
        2 * calibration.STORAGE_OBJECT_REQUEST_S
    )
    assert store.transfer_seconds(0, 0, parallel=4) == 0.0


def test_object_backend_seeds_gateway_files_then_gets_them():
    backend = ObjectStoreBackend()
    backend.stage_in_seconds(FILES)
    # inputs that arrived via upload/Globus are seeded with a PUT, then GET
    assert backend.store.puts == len(FILES)
    assert backend.store.gets == len(FILES)
    backend.stage_in_seconds(FILES)  # second job: already seeded
    assert backend.store.puts == len(FILES)
    assert backend.store.gets == 2 * len(FILES)


def test_object_backend_stage_out_puts_every_output():
    backend = ObjectStoreBackend()
    backend.stage_out_seconds(FILES)
    assert backend.store.keys() == sorted(p for p, _ in FILES)


# -- striping --------------------------------------------------------------
def test_striped_aggregate_scales_with_data_nodes_up_to_client_nic():
    one = StripedFSBackend(1).aggregate_bps()
    two = StripedFSBackend(2).aggregate_bps()
    assert one == pytest.approx(calibration.STORAGE_STRIPE_NODE_MBPS * 1e6)
    # two stripes would exceed the client NIC: capped there
    assert two == pytest.approx(calibration.STORAGE_STRIPE_CLIENT_MBPS * 1e6)
    assert StripedFSBackend(3).aggregate_bps() == two


def test_striped_io_charges_metadata_per_file():
    backend = StripedFSBackend(2)
    empty = backend.stage_in_seconds([("/a", 0), ("/b", 0)])
    assert empty == pytest.approx(2 * calibration.STORAGE_STRIPE_META_S)


# -- cross-backend timing invariants ---------------------------------------
def test_nfs_backend_charges_nothing():
    backend = NFSBackend()
    assert backend.stage_in_seconds(FILES) == 0.0
    assert backend.stage_out_seconds(FILES) == 0.0


def test_staging_cost_ordering_matches_juve():
    striped = StripedFSBackend(2).stage_in_seconds(FILES)
    local = LocalStagingBackend().stage_in_seconds(FILES)
    obj = ObjectStoreBackend().stage_in_seconds(FILES)
    assert 0.0 < striped < local < obj


# -- wiring: who mounts the namespace --------------------------------------
def test_shared_fs_backends_mount_everywhere_but_data_nodes():
    for backend in (NFSBackend(), StripedFSBackend(2)):
        assert backend.should_mount(FakeNode("condor-worker"))
        assert backend.should_mount(FakeNode("galaxy"))
        assert not backend.should_mount(FakeNode("stripe-data"))


def test_non_posix_backends_mount_only_the_gateways():
    for backend in (ObjectStoreBackend(), LocalStagingBackend()):
        assert not backend.should_mount(FakeNode("condor-worker"))
        assert backend.should_mount(FakeNode("galaxy"))
        assert backend.should_mount(FakeNode("gridftp"))
        assert not backend.should_mount(FakeNode("stripe-data"))


def test_build_server_exports_the_head_filesystem():
    class HeadNode:
        local_fs = SimFilesystem(name="head")
        hostname = "head.example.org"

    server = NFSBackend().build_server(HeadNode())
    assert server.fs is HeadNode.local_fs
    assert server.hostname == "head.example.org"


# -- accounting ------------------------------------------------------------
def test_staging_stats_snapshot():
    backend = LocalStagingBackend()
    backend.stage_in_seconds(FILES)
    backend.stage_out_seconds(FILES[:1])
    stats = StagingStats.of(backend)
    assert stats.backend == "local_staging"
    assert stats.bytes_staged_in == 30 * MB
    assert stats.bytes_staged_out == 10 * MB
    assert stats.files_staged == 3
    assert stats.extra["mounts_workers"] is False


def test_describe_reports_backend_specific_detail():
    striped = StripedFSBackend(2).describe()
    assert striped["data_nodes"] == 2
    assert striped["aggregate_mbps"] == pytest.approx(
        calibration.STORAGE_STRIPE_CLIENT_MBPS
    )
    obj = ObjectStoreBackend(parallel=8).describe()
    assert obj["parallel"] == 8 and obj["objects"] == 0
