"""Cross-subsystem integration: everything wired together at once."""

import pytest

from repro.core import (
    AFFY_CEL_PATH,
    CVRG_DATA_ENDPOINT,
    FOUR_CEL_PATH,
    CloudTestbed,
    usecase_topology,
)
from repro.galaxy import JobState, Workflow
from repro.provision import GlobusProvision
from repro.tools_globus import GET_DATA_TOOL_ID, SEND_DATA_TOOL_ID


def deploy(bed, topology):
    gp = GlobusProvision(bed)
    gpi = gp.create(topology)

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return gp, gpi


@pytest.fixture(scope="module")
def world():
    """One deployed cluster shared by the read-mostly tests in this module."""
    bed = CloudTestbed(seed=20)
    gp, gpi = deploy(bed, usecase_topology("c1.medium", cluster_nodes=2))
    return bed, gp, gpi


def run_job(bed, app, job):
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    return job


def test_workflow_dag_over_deployed_cluster(world):
    """Compose GO-fetch output through a 3-step CRData workflow on Condor."""
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu", "wf integration")
    fetch = run_job(bed, app, app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    ))
    assert fetch.state == JobState.OK
    cel_ds = fetch.outputs["output"]

    wf = Workflow(name="normalize-filter-de")
    inp = wf.add_input("CEL archive")
    norm = wf.add_step("crdata_affyNormalize", connect={"input": inp})
    filt = wf.add_step(
        "crdata_affyFilterProbes",
        params={"top_n": 500},
        connect={"input": (norm, "matrix")},
    )
    de = wf.add_step(
        "crdata_matrixModeratedTTest",
        params={"top_n": 20},
        connect={"input": (filt, "matrix")},
    )
    app.save_workflow(wf)
    inv = app.run_workflow("boliu", "normalize-filter-de", history, {inp.id: cel_ds})
    bed.ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "ok"
    # all three steps ran on the condor workers
    machines = {job.machine for job in inv.jobs.values()}
    assert machines <= {"simple-condor-wn1", "simple-condor-wn2"}
    table = app.fs.read(inv.jobs[de.id].outputs["top_table"].file_path).decode()
    assert table.startswith("probe\tlogFC")
    assert len(table.strip().splitlines()) == 21


def test_provenance_captures_and_reruns_on_cluster(world):
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu", "prov integration")
    fetch = run_job(bed, app, app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    ))
    de = run_job(bed, app, app.run_tool(
        "boliu", history, "crdata_affyDifferentialExpression",
        params={"top_n": 25}, inputs=[fetch.outputs["output"]],
    ))
    record = app.provenance.record_for_job(de.id)
    assert record.machine.startswith("simple-condor-wn")
    rerun = app.provenance.rerun(record, history, app.toolbox)
    run_job(bed, app, rerun)
    assert rerun.state == JobState.OK
    original = app.fs.read(de.outputs["top_table"].file_path)
    repeated = app.fs.read(rerun.outputs["top_table"].file_path)
    assert original == repeated  # bit-identical reproduction


def test_round_trip_fetch_analyse_send(world):
    """Fig. 6 full circle: fetch -> analyse -> send results to the laptop."""
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu", "roundtrip")
    fetch = run_job(bed, app, app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    ))
    de = run_job(bed, app, app.run_tool(
        "boliu", history, "crdata_affyDifferentialExpression",
        params={"top_n": 10}, inputs=[fetch.outputs["output"]],
    ))
    send = run_job(bed, app, app.run_tool(
        "boliu", history, SEND_DATA_TOOL_ID,
        params={"endpoint": "boliu#laptop", "path": "/home/boliu/toptable.tsv"},
        inputs=[de.outputs["top_table"]],
    ))
    assert send.state == JobState.OK
    table = bed.laptop_fs.read("/home/boliu/toptable.tsv").decode()
    assert table.startswith("probe\tlogFC")


def test_concurrent_users_share_the_pool(world):
    """Sec. V-A: 'the same approach can be applied for concurrent execution
    when multiple users submit tasks for execution at the same time'."""
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    from repro.workloads import make_expression_matrix_bytes

    data = make_expression_matrix_bytes()
    jobs = []
    for user in ("boliu", "user2"):
        history = app.create_history(user, f"{user} work")
        for i in range(2):
            ds = app.upload_data(history, f"{user}-{i}.tsv", data=data, ext="tabular")
            jobs.append(app.run_tool(user, history, "crdata_matrixTTest", inputs=[ds]))
    bed.ctx.sim.run(until=bed.ctx.sim.all_of([app.jobs.when_done(j) for j in jobs]))
    assert all(j.state == JobState.OK for j in jobs)
    owners = {j.user for j in jobs}
    assert owners == {"boliu", "user2"}
    # the Condor pool served both users across its machines
    assert {j.machine for j in jobs} <= {"simple-condor-wn1", "simple-condor-wn2"}


def test_pages_share_the_full_analysis(world):
    bed, gp, gpi = world
    app = gpi.deployment.galaxy
    history = app.create_history("boliu", "published analysis")
    fetch = run_job(bed, app, app.run_tool(
        "boliu", history, GET_DATA_TOOL_ID,
        params={"endpoint": CVRG_DATA_ENDPOINT, "path": FOUR_CEL_PATH},
    ))
    page = app.pages.create("Cardio results", owner="boliu", slug="cardio")
    page.add_text("Differential expression of four CEL samples.")
    page.embed(history)
    link = app.pages.publish("cardio", owner="boliu")
    assert link == "/u/boliu/p/cardio"
    got = app.pages.get("cardio", as_user="user2")
    embedded_history = got.embedded("history")[0]
    assert embedded_history.datasets[0].name == "fourCelFileSamples.zip"
    # reproduce from the page: rerun provenance of the embedded history
    export = app.provenance.export_history(embedded_history)
    assert any(
        e["created_by"] and e["created_by"]["tool_id"] == "globus_get_data"
        for e in export
    )


def test_faulty_network_still_completes_usecase():
    """Globus Transfer's retry machinery absorbs a 25% fault rate."""
    from repro.core import run_usecase

    bed = CloudTestbed(seed=21, fault_rate=0.25)
    result = run_usecase(bed=bed, scale_up_with=None, run_large=False)
    assert result.step3_job.state == JobState.OK
    # faults occurred somewhere and were retried
    faults = sum(t.faults for t in bed.go.tasks.values())
    assert faults >= 1


def test_stop_resume_preserves_galaxy_state():
    bed = CloudTestbed(seed=22)
    gp, gpi = deploy(bed, usecase_topology("m1.small", cluster_nodes=1))
    app = gpi.deployment.galaxy
    history = app.create_history("boliu", "persistent")
    ds = app.upload_data(history, "note.txt", data=b"before stop", ext="txt")
    gp.stop(gpi.id)
    bed.ctx.sim.run(until=bed.ctx.now + 3600.0)

    def resume():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(resume()))
    # dataset still there (EBS-backed stop/start keeps the disk)
    assert app.fs.read(ds.file_path) == b"before stop"
    job = app.run_tool("boliu", history, "crdata_survivalKaplanMeier", inputs=[
        app.upload_data(
            history, "clinical.tsv",
            data=__import__("repro.workloads", fromlist=["x"]).make_clinical_table(),
            ext="tabular",
        )
    ])
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK


def test_multi_domain_topology_deploys_independent_stacks():
    """GP topologies can define several domains (Sec. III-D)."""
    from repro.provision import DomainSpec, EC2Spec, Topology

    bed = CloudTestbed(seed=23)
    topo = Topology(
        domains=(
            DomainSpec(
                name="alpha", users=("boliu",), galaxy=True, condor=True,
                gridftp=True, cluster_nodes=1, go_endpoint="boliu#alpha",
            ),
            DomainSpec(
                name="beta", users=("user2",), galaxy=True, condor=True,
                cluster_nodes=1,
            ),
        ),
        ec2=EC2Spec(instance_type="m1.small"),
    )
    gp, gpi = deploy(bed, topo)
    dep = gpi.deployment
    assert "alpha-galaxy-condor" in dep.nodes
    assert "beta-galaxy-condor" in dep.nodes
    alpha, beta = dep.domains["alpha"], dep.domains["beta"]
    assert alpha.galaxy is not beta.galaxy
    assert alpha.endpoint_name == "boliu#alpha"
    assert beta.endpoint_name is None  # no gridftp in beta
    assert "boliu" in alpha.galaxy.users
    assert "user2" in beta.galaxy.users
    # domain pools are independent
    assert alpha.pool is not beta.pool
    assert alpha.pool.machine_names() == ["alpha-condor-wn1"]
