"""Scale stress: many users, many jobs, wide pool — everything holds."""

import pytest

from repro.core import CloudTestbed, usecase_topology
from repro.galaxy import JobState
from repro.provision import GlobusProvision
from repro.workloads import make_expression_matrix_bytes


def test_hundred_jobs_eight_workers_four_users():
    bed = CloudTestbed(seed=100)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("c1.medium", cluster_nodes=8,
                                     users=("u1", "u2", "u3", "u4")))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    app = gpi.deployment.galaxy
    data = make_expression_matrix_bytes(n_probes=500)
    jobs = []
    t0 = bed.ctx.now
    for u in ("u1", "u2", "u3", "u4"):
        h = app.create_history(u)
        for i in range(25):
            ds = app.upload_data(h, f"{u}-{i}.tsv", data=data,
                                 size=20 * 1024 * 1024, ext="tabular")
            jobs.append(app.run_tool(u, h, "crdata_matrixTTest", inputs=[ds]))
    bed.ctx.sim.run(until=bed.ctx.sim.all_of([app.jobs.when_done(j) for j in jobs]))
    makespan = bed.ctx.now - t0

    assert len(jobs) == 100
    assert all(j.state == JobState.OK for j in jobs)
    # all 8 workers carried load
    machines = {j.machine for j in jobs}
    assert len(machines) == 8
    # fair share: each user's jobs finished interleaved, not serially;
    # compare median completion per user — they should be close
    import statistics

    medians = {}
    for u in ("u1", "u2", "u3", "u4"):
        medians[u] = statistics.median(
            j.end_time for j in jobs if j.user == u
        )
    spread = max(medians.values()) - min(medians.values())
    assert spread < makespan * 0.25
    # sanity: pool parallelism actually helped (makespan well under serial)
    serial_estimate = sum(
        (j.end_time - j.start_time) for j in jobs
    )
    assert makespan < serial_estimate / 4
