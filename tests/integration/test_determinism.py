"""Whole-scenario determinism: one seed, bit-stable results."""

from repro.core import CloudTestbed, run_usecase


def fingerprint(seed: int) -> tuple:
    bed = CloudTestbed(seed=seed)
    res = run_usecase(bed=bed, scale_up_with="c1.medium")
    return (
        res.deploy_seconds,
        res.transfer_small_seconds,
        res.transfer_large_seconds,
        res.step3_job.wall_s,
        res.step4_job.wall_s,
        res.update_seconds,
        res.top_table_head,
        tuple(res.history_panel),
        round(bed.total_cost(), 12),
        len(bed.ctx.trace.records),
    )


def test_same_seed_same_everything():
    assert fingerprint(5) == fingerprint(5)


def test_different_seed_same_statistics_different_jitterless_times():
    """With boot jitter off, timing is seed-independent; the planted
    statistics depend only on the workload seeds, which are fixed."""
    a, b = fingerprint(5), fingerprint(6)
    assert a[6] == b[6]          # identical top table (same workload seeds)
    assert a[0] == b[0]          # same deploy time (no jitter)


def test_boot_jitter_breaks_timing_but_not_results():
    bed1 = CloudTestbed(seed=5, boot_jitter=0.1)
    res1 = run_usecase(bed=bed1, scale_up_with=None, run_large=False)
    bed2 = CloudTestbed(seed=6, boot_jitter=0.1)
    res2 = run_usecase(bed=bed2, scale_up_with=None, run_large=False)
    assert res1.deploy_seconds != res2.deploy_seconds
    assert res1.top_table_head == res2.top_table_head
