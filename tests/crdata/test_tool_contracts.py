"""Output contracts: every CRData tool's declared outputs are well-formed.

For each of the 35 tools: run it on a suitable input, then check every
declared output against its extension's format contract — tabular files
have a consistent tab-separated grid, html figures are SVG documents,
bam/zip outputs re-parse as their archive formats.
"""

import pytest

from repro.crdata import build_crdata_tools, install_crdata_tools, sniff
from repro.galaxy import GalaxyApp, JobState
from repro.simcore import SimContext
from repro.workloads import (
    make_clinical_table,
    make_expression_matrix_bytes,
    make_four_cel_archive,
    make_rnaseq_archive,
)


@pytest.fixture(scope="module")
def world():
    ctx = SimContext(seed=77)
    app = GalaxyApp(ctx, job_overheads=(0.0, 0.0))
    install_crdata_tools(app.toolbox)
    app.create_user("boliu")
    history = app.create_history("boliu", "contracts")
    arch = make_four_cel_archive()
    inputs = {
        "cel": app.upload_data(history, "cel.zip", data=arch.to_bytes(),
                               size=arch.declared_size, ext="zip"),
        "matrix": app.upload_data(history, "m.tsv",
                                  data=make_expression_matrix_bytes(), ext="tabular"),
        "bam": app.upload_data(history, "r.bam",
                               data=make_rnaseq_archive().to_bytes(), ext="bam"),
        "clinical": app.upload_data(history, "c.tsv", data=make_clinical_table(),
                                    ext="tabular"),
    }
    return app, history, inputs


def input_kind(tool_id: str) -> str:
    if tool_id == "crdata_survivalKaplanMeier":
        return "clinical"
    if tool_id.startswith("crdata_affy") or tool_id == "crdata_heatmap_plot_demo":
        return "cel"
    if tool_id.startswith("crdata_sequence"):
        return "bam"
    return "matrix"


def check_tabular(data: bytes) -> None:
    text = data.decode()
    rows = [ln for ln in text.splitlines() if ln.strip() and not ln.startswith("#")]
    assert rows, "tabular output is empty"
    widths = {len(r.split("\t")) for r in rows}
    assert len(widths) == 1, f"ragged tabular output: widths {widths}"
    assert min(widths) >= 2


def check_html(data: bytes) -> None:
    text = data.decode()
    assert text.startswith("<svg"), "figure output is not SVG"
    assert text.rstrip().endswith("</svg>")


def check_bam(data: bytes) -> None:
    assert sniff(data) == "bam"


CHECKERS = {"tabular": check_tabular, "html": check_html, "bam": check_bam}


@pytest.mark.parametrize("tool_id", [t.id for t in build_crdata_tools()])
def test_tool_output_contract(world, tool_id):
    app, history, inputs = world
    tool = app.toolbox.get(tool_id)
    ds = inputs[input_kind(tool_id)]
    job = app.run_tool("boliu", history, tool_id, inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK, job.stderr
    for output in tool.outputs:
        out_ds = job.outputs[output.name]
        assert out_ds.state.value == "ok"
        payload = app.fs.read(out_ds.file_path)
        assert payload, f"output {output.name} is empty"
        checker = CHECKERS.get(output.ext)
        if checker is not None:
            checker(payload)
