"""SVG / ASCII figure rendering."""

import numpy as np
import pytest

from repro.crdata import plots


def test_scatter_svg_basic():
    x = np.linspace(0, 1, 50)
    y = x**2
    svg = plots.scatter_svg(x, y, "Test scatter")
    assert svg.startswith("<svg")
    assert svg.endswith("</svg>")
    assert "Test scatter" in svg
    assert svg.count("<circle") == 50


def test_scatter_svg_highlight_colors():
    x = np.array([0.0, 1.0])
    y = np.array([0.0, 1.0])
    svg = plots.scatter_svg(x, y, "t", highlight=np.array([True, False]))
    assert "#cc3333" in svg and "#3366aa" in svg


def test_scatter_svg_thins_huge_inputs():
    x = np.arange(10_000, dtype=float)
    svg = plots.scatter_svg(x, x, "big", max_points=100)
    assert svg.count("<circle") == 100


def test_scatter_svg_shape_mismatch():
    with pytest.raises(ValueError):
        plots.scatter_svg(np.zeros(3), np.zeros(4), "bad")


def test_scatter_svg_constant_values_centered():
    svg = plots.scatter_svg(np.ones(5), np.ones(5), "flat")
    assert "<circle" in svg  # no division-by-zero


def test_heatmap_svg():
    m = np.random.default_rng(0).normal(size=(10, 4))
    svg = plots.heatmap_svg(m, [f"r{i}" for i in range(10)], list("abcd"))
    assert svg.count("<rect") >= 40  # one per cell + background
    assert ">a</text>" in svg


def test_heatmap_svg_truncates_rows():
    m = np.zeros((100, 2))
    svg = plots.heatmap_svg(m, [f"r{i}" for i in range(100)], ["a", "b"], max_rows=10)
    # only 10 rows of cells drawn (plus background rect)
    assert svg.count("<rect") == 10 * 2 + 1


def test_heatmap_svg_label_mismatch():
    with pytest.raises(ValueError):
        plots.heatmap_svg(np.zeros((2, 2)), ["only-one"], ["a", "b"])


def test_lines_svg_multi_series():
    x = np.arange(10, dtype=float)
    svg = plots.lines_svg({"s1": (x, x), "s2": (x, 2 * x)}, "Lines")
    assert svg.count("<polyline") == 2
    assert "s1" in svg and "s2" in svg
    with pytest.raises(ValueError):
        plots.lines_svg({}, "empty")


def test_boxplot_svg():
    s = np.array([[0.0], [1.0], [2.0], [3.0], [4.0]])
    svg = plots.boxplot_svg(s, ["only"], "Box")
    assert "<rect" in svg and "<line" in svg
    with pytest.raises(ValueError):
        plots.boxplot_svg(np.zeros((4, 1)), ["x"], "bad shape")


def test_ascii_heatmap():
    m = np.array([[0.0, 1.0], [0.5, 0.25]])
    art = plots.ascii_heatmap(m)
    lines = art.splitlines()
    assert len(lines) == 2
    assert len(lines[0]) == 2
    assert lines[0][0] == " " and lines[0][1] == "@"  # min/max characters
