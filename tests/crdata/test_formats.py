"""Generative archive formats: round-trips and regeneration determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdata import (
    BamArchive,
    CelArchive,
    ExpressionMatrix,
    FormatError,
    TranscriptAnnotation,
    sniff,
)
from repro.workloads import make_four_cel_archive


def test_cel_roundtrip():
    arch = make_four_cel_archive()
    again = CelArchive.from_bytes(arch.to_bytes())
    assert again == arch


def test_cel_regeneration_is_deterministic():
    arch = make_four_cel_archive()
    a = arch.intensities()
    b = CelArchive.from_bytes(arch.to_bytes()).intensities()
    assert np.array_equal(a, b)
    assert a.shape == (arch.n_probes, arch.n_arrays)
    assert np.all(a > 0)


def test_cel_planted_signal_present():
    arch = make_four_cel_archive()
    log2 = np.log2(arch.intensities())
    planted = arch.planted_probes()
    mask = np.array([g == "case" for g in arch.groups])
    diffs = np.abs(
        log2[planted][:, mask].mean(axis=1) - log2[planted][:, ~mask].mean(axis=1)
    )
    background = np.abs(
        np.delete(log2, planted, axis=0)[:, mask].mean(axis=1)
        - np.delete(log2, planted, axis=0)[:, ~mask].mean(axis=1)
    )
    assert diffs.mean() > 4 * background.mean()


def test_cel_validation():
    with pytest.raises(FormatError, match="one label per array"):
        CelArchive(n_arrays=3, n_probes=10, seed=0, groups=["a", "b"])
    with pytest.raises(FormatError, match="more differential"):
        CelArchive(n_arrays=2, n_probes=5, seed=0, groups=["a", "b"], n_diff=10)


def test_cel_from_garbage():
    with pytest.raises(FormatError):
        CelArchive.from_bytes(b"\x00\x01binary")
    with pytest.raises(FormatError):
        CelArchive.from_bytes(b'{"format": "other"}')


def test_expression_matrix_roundtrip():
    em = ExpressionMatrix(
        values=np.array([[1.0, 2.0], [3.5, 4.25]]),
        probe_names=["p1", "p2"],
        sample_names=["s1", "s2"],
        groups=["A", "B"],
    )
    back = ExpressionMatrix.from_bytes(em.to_bytes())
    assert back.probe_names == ["p1", "p2"]
    assert back.groups == ["A", "B"]
    assert np.allclose(back.values, em.values)


def test_expression_matrix_validation():
    with pytest.raises(FormatError):
        ExpressionMatrix(
            values=np.zeros((2, 2)), probe_names=["p"], sample_names=["a", "b"],
            groups=["A", "B"],
        )
    with pytest.raises(FormatError, match="#groups"):
        ExpressionMatrix.from_bytes(b"probe\ts1\np\t1\n")


def test_annotation_synthetic_no_overlaps():
    ann = TranscriptAnnotation.synthetic(n_transcripts=50, seed=1)
    txs = sorted(ann.transcripts, key=lambda t: t.start)
    for a, b in zip(txs, txs[1:]):
        assert a.end <= b.start
    back = TranscriptAnnotation.from_bytes(ann.to_bytes())
    assert back.transcripts == ann.transcripts


def test_bam_archive_roundtrip_and_reads():
    arch = BamArchive(
        n_reads_per_sample=1000,
        seed=5,
        samples=["s1", "s2"],
        conditions=["A", "B"],
        n_transcripts=20,
    )
    back = BamArchive.from_bytes(arch.to_bytes())
    assert back == arch
    starts = arch.read_starts(0)
    assert starts.size == 1000
    assert np.all(np.diff(starts) >= 0)  # sorted
    # deterministic per sample, distinct across samples
    assert np.array_equal(starts, back.read_starts(0))
    assert not np.array_equal(starts, arch.read_starts(1))


def test_bam_validation():
    with pytest.raises(FormatError, match="one condition per sample"):
        BamArchive(n_reads_per_sample=10, seed=0, samples=["a"], conditions=["A", "B"])


def test_sniff():
    assert sniff(make_four_cel_archive().to_bytes()) == "cel"
    arch = BamArchive(n_reads_per_sample=1, seed=0, samples=["s"], conditions=["A"])
    assert sniff(arch.to_bytes()) == "bam"
    em = ExpressionMatrix(np.zeros((1, 1)), ["p"], ["s"], ["A"])
    assert sniff(em.to_bytes()) == "matrix"
    assert sniff(b"#name\tchrom\tstart\tend\n") == "annotation"
    assert sniff(b"random text") == "unknown"
    assert sniff(b'{"format": "who-knows"}') == "unknown"


@settings(max_examples=20, deadline=None)
@given(
    n_arrays=st.integers(min_value=2, max_value=8),
    n_probes=st.integers(min_value=10, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_cel_shapes_and_determinism(n_arrays, n_probes, seed):
    arch = CelArchive(
        n_arrays=n_arrays,
        n_probes=n_probes,
        seed=seed,
        groups=["g1"] * (n_arrays // 2) + ["g2"] * (n_arrays - n_arrays // 2),
        n_diff=min(3, n_probes),
    )
    x = arch.intensities()
    assert x.shape == (n_probes, n_arrays)
    assert np.array_equal(x, arch.intensities())
    assert np.all(x > 0)
