"""The 35-tool catalog: registration, and every tool runs through Galaxy."""

import numpy as np
import pytest

from repro.crdata import (
    BamArchive,
    ExpressionMatrix,
    USECASE_TOOL_ID,
    build_crdata_tools,
    install_crdata_tools,
)
from repro.galaxy import GalaxyApp, JobState
from repro.simcore import SimContext
from repro.workloads import (
    make_clinical_table,
    make_expression_matrix_bytes,
    make_four_cel_archive,
    make_rnaseq_archive,
)


@pytest.fixture
def app():
    ctx = SimContext(seed=9)
    app = GalaxyApp(ctx, job_overheads=(0.0, 0.0))
    install_crdata_tools(app.toolbox)
    app.create_user("boliu")
    return app


@pytest.fixture
def history(app):
    return app.create_history("boliu", "CRData")


def run(app, history, tool_id, ds, params=None):
    job = app.run_tool("boliu", history, tool_id, params=params, inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    return job


def upload_cel(app, history):
    arch = make_four_cel_archive()
    return app.upload_data(
        history, "fourCelFileSamples.zip", data=arch.to_bytes(),
        size=arch.declared_size, ext="zip",
    )


def upload_matrix(app, history):
    return app.upload_data(
        history, "matrix.tsv", data=make_expression_matrix_bytes(), ext="tabular"
    )


def upload_bam(app, history):
    arch = make_rnaseq_archive()
    return app.upload_data(history, "reads.bam", data=arch.to_bytes(), ext="bam")


def test_catalog_has_35_tools():
    tools = build_crdata_tools()
    assert len(tools) == 35
    assert len({t.id for t in tools}) == 35
    named = {t.name for t in tools}
    # the four scripts the paper names explicitly
    assert {"affyDifferentialExpression.R", "affyClassify.R",
            "heatmap_plot_demo.R", "sequenceCountsPerTranscript.R",
            "sequenceDifferentialExperssion.R"} <= named
    assert all(t.requirements == ("R", "crdata-tools") for t in tools)
    assert all(t.description for t in tools)


def test_install_places_tools_in_crdata_section(app):
    sections = app.toolbox.sections()
    assert len(sections["CRData"]) == 35


def test_usecase_tool_recovers_planted_probes(app, history):
    """The paper's step 3: affyDifferentialExpression on 4 CEL files."""
    arch = make_four_cel_archive()
    ds = upload_cel(app, history)
    assert ds.size == arch.declared_size  # paper's 10.7 MB
    job = run(app, history, USECASE_TOOL_ID, ds, params={"top_n": 100})
    assert job.state == JobState.OK
    top_table = app.fs.read(job.outputs["top_table"].file_path).decode()
    lines = top_table.strip().splitlines()
    assert lines[0].startswith("probe\tlogFC")
    planted = {f"probe_{i:05d}_at" for i in arch.planted_probes()}
    reported = {ln.split("\t")[0] for ln in lines[1 : len(planted) + 1]}
    recovery = len(reported & planted) / len(planted)
    assert recovery >= 0.85
    figure = app.fs.read(job.outputs["figure"].file_path).decode()
    assert figure.startswith("<svg")
    assert "volcano" in figure.lower()


def test_affy_classify_perfect_on_separable(app, history):
    ds = upload_cel(app, history)
    job = run(app, history, "crdata_affyClassify", ds)
    assert job.state == JobState.OK
    preds = app.fs.read(job.outputs["predictions"].file_path).decode()
    assert "accuracy: 1.000" in preds


def test_heatmap_tool_clusters_samples(app, history):
    ds = upload_cel(app, history)
    job = run(app, history, "crdata_heatmap_plot_demo", ds)
    assert job.state == JobState.OK
    clusters = app.fs.read(job.outputs["clusters"].file_path).decode()
    rows = dict(
        ln.split("\t") for ln in clusters.strip().splitlines()[1:]
    )
    assert rows["sample_01.CEL"] == rows["sample_02.CEL"]
    assert rows["sample_03.CEL"] == rows["sample_04.CEL"]
    assert rows["sample_01.CEL"] != rows["sample_03.CEL"]


def test_sequence_counts_matrix_shape(app, history):
    ds = upload_bam(app, history)
    job = run(app, history, "crdata_sequenceCountsPerTranscript", ds)
    assert job.state == JobState.OK
    counts = app.fs.read(job.outputs["counts"].file_path).decode()
    lines = counts.strip().splitlines()
    arch = make_rnaseq_archive()
    assert len(lines) == arch.n_transcripts + 1
    header = lines[0].split("\t")
    assert header[1:] == arch.samples


def test_sequence_de_recovers_planted(app, history):
    arch = make_rnaseq_archive(n_reads=30_000, effect=4.0)
    ds = app.upload_data(history, "reads.bam", data=arch.to_bytes(), ext="bam")
    job = run(app, history, "crdata_sequenceDifferentialExperssion", ds,
              params={"top_n": 15})
    assert job.state == JobState.OK
    table = app.fs.read(job.outputs["top_table"].file_path).decode()
    planted = {f"tx_{i:04d}" for i in arch.planted_transcripts()}
    reported = {ln.split("\t")[0] for ln in table.strip().splitlines()[1:]}
    assert len(reported & planted) / len(planted) >= 0.6


def test_survival_tool(app, history):
    ds = app.upload_data(history, "clinical.tsv", data=make_clinical_table(), ext="tabular")
    job = run(app, history, "crdata_survivalKaplanMeier", ds)
    assert job.state == JobState.OK
    curves = app.fs.read(job.outputs["curves"].file_path).decode()
    assert "# group: A" in curves and "# group: B" in curves
    assert "log-rank" in job.outputs["curves"].info


def test_wrong_input_format_errors_cleanly(app, history):
    ds = app.upload_data(history, "garbage.txt", data=b"not a cel archive", ext="txt")
    job = run(app, history, "crdata_affyNormalize", ds)
    assert job.state == JobState.ERROR
    assert "not a CEL archive" in job.stderr


def test_matrix_pipeline_normalize_then_de(app, history):
    """Chain: affyNormalize -> matrixModeratedTTest reproduces the DE result."""
    ds = upload_cel(app, history)
    norm_job = run(app, history, "crdata_affyNormalize", ds)
    assert norm_job.state == JobState.OK
    matrix_ds = norm_job.outputs["matrix"]
    de_job = run(app, history, "crdata_matrixModeratedTTest", matrix_ds)
    assert de_job.state == JobState.OK
    table = app.fs.read(de_job.outputs["top_table"].file_path).decode()
    assert table.startswith("probe\tlogFC")


def test_every_tool_runs_ok(app, history):
    """Smoke: all 35 tools produce OK jobs on a suitable input."""
    cel = upload_cel(app, history)
    matrix = upload_matrix(app, history)
    bam = upload_bam(app, history)
    clinical = app.upload_data(
        history, "clinical.tsv", data=make_clinical_table(), ext="tabular"
    )
    inputs = {
        "crdata_survivalKaplanMeier": clinical,
    }
    failures = []
    for tool in app.toolbox.sections()["CRData"]:
        if tool.id in inputs:
            ds = inputs[tool.id]
        elif tool.id.startswith("crdata_affy") or tool.id == "crdata_heatmap_plot_demo":
            ds = cel
        elif tool.id.startswith("crdata_sequence"):
            ds = bam
        else:
            ds = matrix
        job = run(app, history, tool.id, ds)
        if job.state != JobState.OK:
            failures.append((tool.id, job.stderr))
    assert not failures, failures


def test_filter_then_reuse_output(app, history):
    bam = upload_bam(app, history)
    fjob = run(app, history, "crdata_sequenceFilterReads", bam,
               params={"keep_fraction": 0.5})
    assert fjob.state == JobState.OK
    filtered = fjob.outputs["bam"]
    cjob = run(app, history, "crdata_sequenceCountsPerTranscript", filtered)
    assert cjob.state == JobState.OK
    text = app.fs.read(cjob.outputs["counts"].file_path).decode()
    total = sum(
        sum(int(v) for v in ln.split("\t")[1:])
        for ln in text.strip().splitlines()[1:]
    )
    arch = make_rnaseq_archive()
    assert total <= arch.n_reads_per_sample * len(arch.samples) * 0.55


def test_bad_parameter_value_rejected(app, history):
    ds = upload_bam(app, history)
    job = run(app, history, "crdata_sequenceFilterReads", ds,
              params={"keep_fraction": 2.0})
    assert job.state == JobState.ERROR
    assert "keep_fraction" in job.stderr
