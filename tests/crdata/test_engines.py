"""Statistical engines: correctness on planted-signal data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdata.engines import (
    classify,
    clustering,
    diffexpr,
    normalize,
    qc,
    rnaseq,
    survival,
)
from repro.crdata.formats import TranscriptAnnotation
from repro.workloads import make_four_cel_archive, make_rnaseq_archive


# -- normalize ------------------------------------------------------------------


def test_quantile_normalize_equalises_distributions():
    rng = np.random.default_rng(0)
    m = rng.normal(0, 1, size=(500, 4)) * np.array([1, 2, 3, 4]) + np.array([0, 5, -3, 2])
    q = normalize.quantile_normalize(m)
    cols = [np.sort(q[:, j]) for j in range(4)]
    for c in cols[1:]:
        assert np.allclose(c, cols[0])


def test_quantile_normalize_preserves_ranks():
    rng = np.random.default_rng(1)
    m = rng.normal(0, 1, size=(100, 3))
    q = normalize.quantile_normalize(m)
    for j in range(3):
        assert np.array_equal(np.argsort(m[:, j]), np.argsort(q[:, j]))


def test_rma_removes_scale_differences():
    arch = make_four_cel_archive()
    norm = normalize.rma(arch.intensities())
    medians = np.median(norm, axis=0)
    assert np.ptp(medians) < 1e-9  # identical after quantile normalization


def test_median_polish_recovers_additive_structure():
    rng = np.random.default_rng(2)
    row = rng.normal(0, 2, size=20)
    col = rng.normal(0, 1, size=5)
    m = 10 + row[:, None] + col[None, :]
    overall, row_eff, col_eff, resid = normalize.median_polish(m)
    assert overall == pytest.approx(10 + np.median(row) + np.median(col), abs=0.5)
    assert np.abs(resid).max() < 1e-6


def test_cpm_sums_to_million():
    counts = np.array([[10, 100], [90, 900]], dtype=float)
    c = normalize.cpm(counts)
    assert np.allclose(c.sum(axis=0), 1e6)
    with pytest.raises(ValueError):
        normalize.cpm(np.zeros((2, 2)))


def test_zscore_rows():
    m = np.array([[1.0, 2.0, 3.0], [10.0, 10.0, 10.0]])
    z = normalize.zscore(m)
    assert z[0].mean() == pytest.approx(0.0)
    assert z[0].std(ddof=1) == pytest.approx(1.0)
    assert np.all(z[1] == 0.0)  # constant row guarded


def test_log2_requires_positive():
    with pytest.raises(ValueError):
        normalize.log2_transform(np.array([[1.0, -1.0]]))
    with pytest.raises(ValueError):
        normalize.background_correct(np.array([[-5.0]]))


# -- diffexpr --------------------------------------------------------------------


def make_planted(seed=0, n=400, n_diff=20, per_group=4, effect=2.0):
    rng = np.random.default_rng(seed)
    m = rng.normal(8, 0.4, size=(n, 2 * per_group))
    planted = rng.choice(n, size=n_diff, replace=False)
    m[planted, per_group:] += effect
    mask = np.array([False] * per_group + [True] * per_group)
    return m, mask, set(planted.tolist())


def test_moderated_t_recovers_planted_genes():
    m, mask, planted = make_planted()
    res = diffexpr.moderated_t_test(m, mask)
    top = {int(r.name.split("_")[1]) for r in res.top(len(planted))}
    recovered = len(top & planted) / len(planted)
    assert recovered >= 0.9


def test_moderated_t_controls_null():
    rng = np.random.default_rng(3)
    m = rng.normal(0, 1, size=(500, 8))
    mask = np.array([False] * 4 + [True] * 4)
    res = diffexpr.moderated_t_test(m, mask)
    assert len(res.significant(0.05)) <= 5  # few false positives at FDR 5%


def test_moderated_t_small_groups_rejected():
    m = np.zeros((10, 3))
    with pytest.raises(ValueError, match="two samples"):
        diffexpr.moderated_t_test(m, np.array([False, True, True]))


def test_moderated_shrinks_variance():
    m, mask, _ = make_planted(per_group=2)  # tiny groups: shrinkage matters
    res = diffexpr.moderated_t_test(m, mask)
    assert res.d0 > 0
    assert res.s0_sq > 0


def test_top_table_tsv_format():
    m, mask, _ = make_planted()
    res = diffexpr.moderated_t_test(m, mask)
    tsv = res.as_tsv(5)
    lines = tsv.strip().splitlines()
    assert lines[0] == diffexpr.TOP_TABLE_HEADER
    assert len(lines) == 6
    assert len(lines[1].split("\t")) == 6


def test_bh_monotone_and_bounded():
    p = np.array([0.001, 0.01, 0.02, 0.5, 0.9])
    adj = diffexpr.benjamini_hochberg(p)
    assert np.all(adj >= p - 1e-12)
    assert np.all(adj <= 1.0)
    # order preserved
    assert np.array_equal(np.argsort(adj), np.argsort(p))


def test_student_t_also_recovers():
    m, mask, planted = make_planted(effect=3.0)
    res = diffexpr.student_t_test(m, mask)
    top = {int(r.name.split("_")[1]) for r in res.top(len(planted))}
    assert len(top & planted) / len(planted) >= 0.8


def test_anova_multi_group():
    rng = np.random.default_rng(4)
    m = rng.normal(0, 1, size=(200, 12))
    m[:10, 8:] += 5.0  # third group strongly shifted for first 10 rows
    groups = ["a"] * 4 + ["b"] * 4 + ["c"] * 4
    rows = diffexpr.one_way_anova(m, groups)
    top_rows = {int(r[0].split("_")[1]) for r in rows[:10]}
    assert len(top_rows & set(range(10))) >= 8
    with pytest.raises(ValueError):
        diffexpr.one_way_anova(m, ["a"] * 12)


def test_fold_change_ordering():
    m = np.array([[0.0, 0.0, 5.0, 5.0], [0.0, 0.0, 1.0, 1.0]])
    rows = diffexpr.fold_change(m, np.array([False, False, True, True]))
    assert rows[0][1] == pytest.approx(5.0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=1e-6, max_value=1.0), min_size=2, max_size=40))
def test_property_bh_idempotent_bounds(ps):
    p = np.array(ps)
    adj = diffexpr.benjamini_hochberg(p)
    assert np.all((0 <= adj) & (adj <= 1))
    assert np.all(adj >= p - 1e-12)


# -- clustering --------------------------------------------------------------------


def test_hierarchical_separates_groups():
    arch = make_four_cel_archive()
    norm = normalize.rma(arch.intensities())
    res = clustering.hierarchical_cluster(norm, labels=arch.array_names, axis="samples")
    assign = res.cluster_assignments
    # the two controls cluster together, as do the two cases
    assert assign[0] == assign[1]
    assert assign[2] == assign[3]
    assert assign[0] != assign[2]


def test_hierarchical_validation():
    with pytest.raises(ValueError, match="axis"):
        clustering.hierarchical_cluster(np.zeros((4, 4)), axis="banana")
    with pytest.raises(ValueError, match="two observations"):
        clustering.hierarchical_cluster(np.zeros((5, 1)), axis="samples")


def test_kmeans_finds_planted_clusters():
    rng = np.random.default_rng(5)
    a = rng.normal(0, 0.2, size=(30, 3))
    b = rng.normal(5, 0.2, size=(30, 3))
    res = clustering.kmeans(np.vstack([a, b]), k=2, seed=1)
    assert len(set(res.assignments[:30])) == 1
    assert len(set(res.assignments[30:])) == 1
    assert res.assignments[0] != res.assignments[30]
    with pytest.raises(ValueError):
        clustering.kmeans(a, k=0)


def test_correlation_matrix_shape():
    m = np.random.default_rng(6).normal(size=(50, 4))
    c = clustering.correlation_matrix(m)
    assert c.shape == (4, 4)
    assert np.allclose(np.diag(c), 1.0)


# -- classify ----------------------------------------------------------------------


def test_classify_separable_data():
    rng = np.random.default_rng(7)
    g1 = rng.normal(0, 0.5, size=(100, 4))
    g2 = rng.normal(3, 0.5, size=(100, 4))
    m = np.hstack([g1, g2])
    groups = ["ctrl"] * 4 + ["case"] * 4
    for method in ("centroid", "lda"):
        res = classify.cross_validate(m, groups, method=method)
        assert res.accuracy == 1.0
    tsv = classify.cross_validate(m, groups).confusion_tsv()
    assert "ctrl" in tsv and "case" in tsv


def test_classify_validation():
    m = np.zeros((10, 4))
    with pytest.raises(classify.ClassifyError, match="two classes"):
        classify.cross_validate(m, ["a"] * 4)
    with pytest.raises(classify.ClassifyError, match="at least two samples"):
        classify.cross_validate(m, ["a", "a", "a", "b"])
    with pytest.raises(classify.ClassifyError, match="unknown method"):
        classify.cross_validate(m, ["a", "a", "b", "b"], method="svm")


# -- rnaseq -----------------------------------------------------------------------


def test_count_reads_exact():
    ann = TranscriptAnnotation.from_bytes(
        b"#name\tchrom\tstart\tend\ntx1\tchr1\t100\t200\ntx2\tchr1\t300\t400\n"
    )
    reads = np.array([50, 100, 150, 199, 200, 350, 500])
    counts = rnaseq.count_reads_per_transcript(reads, ann)
    assert counts.tolist() == [3, 1]  # 100,150,199 in tx1; 350 in tx2


def test_count_matrix_and_de_recovers_planted():
    arch = make_rnaseq_archive(n_reads=30_000, effect=4.0)
    counts, names, samples = rnaseq.count_matrix(arch)
    assert counts.shape == (arch.n_transcripts, len(arch.samples))
    assert counts.sum() > 0
    mask = np.array([c == "B" for c in arch.conditions])
    rows = rnaseq.two_sample_count_test(counts, mask, names)
    planted = {f"tx_{i:04d}" for i in arch.planted_transcripts()}
    top = {r.name for r in rows[: len(planted)]}
    assert len(top & planted) / len(planted) >= 0.7


def test_two_sample_count_test_validation():
    with pytest.raises(ValueError, match="both conditions"):
        rnaseq.two_sample_count_test(np.ones((3, 2)), np.array([True, True]))
    with pytest.raises(ValueError, match="mask length"):
        rnaseq.two_sample_count_test(np.ones((3, 2)), np.array([True]))


def test_alignment_stats():
    arch = make_rnaseq_archive(n_reads=5000)
    stats_rows = rnaseq.alignment_stats(arch)
    assert len(stats_rows) == len(arch.samples)
    for row in stats_rows:
        assert row.n_reads == 5000
        assert 0.9 <= row.fraction_in_transcripts <= 1.0


def test_coverage_and_gene_body():
    arch = make_rnaseq_archive(n_reads=5000)
    ann = arch.annotation()
    hist, edges = rnaseq.coverage_histogram(arch.read_starts(0), ann)
    assert hist.sum() > 0 and len(edges) == len(hist) + 1
    profile = rnaseq.gene_body_coverage(arch, 0)
    assert profile.sum() > 0


# -- survival ---------------------------------------------------------------------


def test_km_no_censoring_simple():
    curve = survival.kaplan_meier(np.array([1.0, 2.0, 3.0, 4.0]), np.ones(4, dtype=int))
    assert np.allclose(curve.survival, [0.75, 0.5, 0.25, 0.0])
    assert curve.median_survival == 2.0


def test_km_with_censoring():
    times = np.array([1.0, 2.0, 2.5, 3.0])
    events = np.array([1, 0, 1, 1])  # one censored at 2.0
    curve = survival.kaplan_meier(times, events)
    # survival never increases, stays within (0, 1]
    assert np.all(np.diff(curve.survival) <= 1e-12)
    assert curve.survival[0] == pytest.approx(0.75)


def test_km_validation():
    with pytest.raises(survival.SurvivalError):
        survival.kaplan_meier(np.array([]), np.array([]))
    with pytest.raises(survival.SurvivalError):
        survival.kaplan_meier(np.array([1.0]), np.array([2]))
    with pytest.raises(survival.SurvivalError):
        survival.kaplan_meier(np.array([-1.0]), np.array([1]))


def test_logrank_detects_hazard_difference():
    from repro.workloads import make_clinical_table

    times, events, groups = survival.parse_clinical_table(make_clinical_table())
    chi2, p = survival.logrank_test(times, events, groups)
    assert p < 0.01
    # identical groups: no signal
    same = np.concatenate([times[:20], times[:20]])
    same_e = np.concatenate([events[:20], events[:20]])
    chi2_0, p_0 = survival.logrank_test(same, same_e, ["A"] * 20 + ["B"] * 20)
    assert chi2_0 == pytest.approx(0.0, abs=1e-9)


def test_parse_clinical_table_errors():
    with pytest.raises(survival.SurvivalError):
        survival.parse_clinical_table(b"nope\n1\t1\tA\n")


# -- qc ----------------------------------------------------------------------------


def test_pca_separates_groups():
    arch = make_four_cel_archive()
    norm = normalize.rma(arch.intensities())
    res = qc.pca(norm)
    assert res.scores.shape == (4, 2)
    assert res.explained_variance_ratio[0] > res.explained_variance_ratio[1]
    pc1 = res.scores[:, 0]
    # the two groups land on opposite sides along some PC
    assert (pc1[:2].mean() - pc1[2:].mean()) != pytest.approx(0.0, abs=1e-6)


def test_array_qc_flags_outlier():
    rng = np.random.default_rng(8)
    m = rng.normal(8, 0.3, size=(300, 5))
    m[:, 4] += 5.0  # broken array
    rows = qc.array_qc(m, [f"s{i}" for i in range(5)])
    assert rows[4].outlier
    assert not any(r.outlier for r in rows[:4])


def test_ma_values_and_validation():
    m = np.random.default_rng(9).normal(size=(100, 3))
    diff, ave = qc.ma_values(m, 0, 1)
    assert diff.shape == ave.shape == (100,)
    with pytest.raises(ValueError):
        qc.ma_values(m, 0, 0)
    with pytest.raises(ValueError):
        qc.ma_values(m, 0, 9)


def test_variance_filter():
    m = np.vstack([np.zeros((5, 4)), np.random.default_rng(10).normal(size=(5, 4))])
    names = [f"p{i}" for i in range(10)]
    kept, kept_names = qc.variance_filter(m, names, min_var=1e-6)
    assert all(n.startswith("p") and int(n[1:]) >= 5 for n in kept_names)
    top2, top2_names = qc.variance_filter(m, names, top_n=2)
    assert len(top2_names) == 2


def test_correlation_test():
    x = np.arange(20.0)
    r, p = qc.correlation_test(x, 2 * x + 1)
    assert r == pytest.approx(1.0)
    r2, p2 = qc.correlation_test(x, -x, method="spearman")
    assert r2 == pytest.approx(-1.0)
    with pytest.raises(ValueError):
        qc.correlation_test(x, x[:5])
    with pytest.raises(ValueError):
        qc.correlation_test(x, x, method="kendall")
