"""Batch work models must match the scalar models exactly, per row."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crdata import USECASE_TOOL_ID, build_crdata_tools
from repro.crdata.catalog import (
    BATCH_WORK_MODELS,
    affy_work,
    matrix_work,
    plot_work,
    seq_work,
)
from repro.galaxy.tools import ToolError, as_sizes_matrix, vectorize_work_model

SCALAR_MODELS = [affy_work, matrix_work, seq_work, plot_work]

size_matrices = st.integers(min_value=1, max_value=8).flatmap(
    lambda cols: st.lists(
        st.lists(
            st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
            min_size=cols,
            max_size=cols,
        ),
        min_size=1,
        max_size=20,
    )
)


@pytest.mark.parametrize("scalar", SCALAR_MODELS, ids=lambda f: f.__name__)
@given(matrix=size_matrices)
def test_batch_matches_scalar_loop_exactly(scalar, matrix):
    """Bitwise equality: the batch model is the scalar model, vectorized."""
    arr = np.asarray(matrix, dtype=float)
    batch = BATCH_WORK_MODELS[scalar]
    cpu, io = batch({}, arr)
    assert cpu.shape == io.shape == (arr.shape[0],)
    for i, row in enumerate(arr):
        cpu_ref, io_ref = scalar({}, row)
        assert cpu[i] == cpu_ref  # exact, not approx
        assert io[i] == io_ref


@pytest.mark.parametrize("scalar", SCALAR_MODELS, ids=lambda f: f.__name__)
def test_batch_accepts_flat_size_vector(scalar):
    """A 1-D vector means one single-input job per entry."""
    sizes = np.array([1e6, 2e7, 3e8])
    batch = BATCH_WORK_MODELS[scalar]
    cpu_flat, io_flat = batch({}, sizes)
    cpu_col, io_col = batch({}, sizes.reshape(-1, 1))
    assert np.array_equal(cpu_flat, cpu_col)
    assert np.array_equal(io_flat, io_col)


def test_every_catalog_work_model_has_a_batch_variant_wired():
    for tool in build_crdata_tools():
        if tool.work_model is not None:
            assert tool.work_model_batch is BATCH_WORK_MODELS[tool.work_model]


def test_tool_work_batch_uses_registered_batch_model():
    tool = next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)
    sizes = np.array([[10.7e6], [190.3e6]])
    cpu, io = tool.work_batch({}, sizes)
    cpu_ref, io_ref = BATCH_WORK_MODELS[tool.work_model]({}, sizes)
    assert np.array_equal(cpu, cpu_ref)
    assert np.array_equal(io, io_ref)


def test_tool_work_batch_falls_back_to_scalar_wrapper():
    """A Tool with only a scalar work_model still prices batches."""
    tool = next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)
    fallback = replace(tool, work_model_batch=None)
    assert fallback.work_model_batch is None
    sizes = np.array([[10.7e6], [190.3e6], [5e5]])
    cpu, io = fallback.work_batch({}, sizes)
    cpu_ref, io_ref = tool.work_batch({}, sizes)
    assert np.array_equal(cpu, cpu_ref)
    assert np.array_equal(io, io_ref)


def test_vectorize_work_model_matches_scalar():
    wrapped = vectorize_work_model(seq_work)
    arr = np.array([[1e6, 2e6], [3e6, 4e6]])
    cpu, io = wrapped({}, arr)
    for i, row in enumerate(arr):
        cpu_ref, io_ref = seq_work({}, row)
        assert cpu[i] == cpu_ref
        assert io[i] == io_ref


def test_as_sizes_matrix_shapes():
    assert as_sizes_matrix([1.0, 2.0]).shape == (2, 1)
    assert as_sizes_matrix([[1.0, 2.0]]).shape == (1, 2)
    with pytest.raises(ToolError, match="1-D or 2-D"):
        as_sizes_matrix(np.zeros((2, 2, 2)))


def test_work_batch_rejects_wrong_output_shape():
    tool = next(t for t in build_crdata_tools() if t.id == USECASE_TOOL_ID)
    bad = replace(
        tool, work_model_batch=lambda params, sizes: (np.zeros(1), np.zeros(1))
    )
    with pytest.raises(ToolError, match="shape"):
        bad.work_batch({}, np.array([[1.0], [2.0]]))
