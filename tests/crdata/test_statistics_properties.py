"""Scientific properties of the statistical engines.

These test the *statistics* rather than the plumbing: the empirical-Bayes
moderation must beat the plain t-test in small samples (the reason limma
exists, and why the use case's 2-vs-2 design works at all), normalization
must be idempotent, etc.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crdata.engines import clustering, diffexpr, normalize


def recovery(result_rows, planted, n):
    top = {int(r.name.split("_")[1]) for r in result_rows[:n]}
    return len(top & planted) / len(planted)


def test_moderated_t_beats_plain_t_in_small_samples():
    """Averaged over repeats, moderation recovers more planted genes
    from 2-vs-2 designs — the whole point of empirical Bayes shrinkage."""
    mod_scores, plain_scores = [], []
    for seed in range(12):
        rng = np.random.default_rng(seed)
        n, n_diff = 400, 20
        # heteroscedastic noise: some genes are intrinsically noisy
        sds = rng.uniform(0.1, 1.2, size=(n, 1))
        m = rng.normal(0, 1, size=(n, 4)) * sds + 8.0
        planted = set(rng.choice(n, size=n_diff, replace=False).tolist())
        for i in planted:
            m[i, 2:] += 1.5
        mask = np.array([False, False, True, True])
        mod = diffexpr.moderated_t_test(m, mask)
        plain = diffexpr.student_t_test(m, mask)
        mod_scores.append(recovery(mod.rows, planted, n_diff))
        plain_scores.append(recovery(plain.rows, planted, n_diff))
    assert np.mean(mod_scores) > np.mean(plain_scores) + 0.05
    assert np.mean(mod_scores) > 0.35


def test_quantile_normalize_is_idempotent():
    rng = np.random.default_rng(1)
    m = rng.lognormal(2, 1, size=(300, 5))
    once = normalize.quantile_normalize(m)
    twice = normalize.quantile_normalize(once)
    assert np.allclose(once, twice, atol=1e-9)


def test_zscore_is_idempotent_in_distribution():
    rng = np.random.default_rng(2)
    m = rng.normal(5, 3, size=(50, 10))
    z = normalize.zscore(m)
    zz = normalize.zscore(z)
    assert np.allclose(z, zz, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=100),
)
def test_property_quantile_norm_preserves_total_rank_structure(n_cols, seed):
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(60, n_cols))
    q = normalize.quantile_normalize(m)
    for j in range(n_cols):
        assert np.array_equal(np.argsort(m[:, j]), np.argsort(q[:, j]))


def test_kmeans_deterministic_given_seed():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(60, 4))
    a = clustering.kmeans(x, k=3, seed=9)
    b = clustering.kmeans(x, k=3, seed=9)
    assert np.array_equal(a.assignments, b.assignments)
    assert a.inertia == b.inertia


def test_kmeans_inertia_decreases_with_k():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(80, 3))
    inertias = [clustering.kmeans(x, k=k, seed=0).inertia for k in (1, 2, 4, 8)]
    assert inertias == sorted(inertias, reverse=True)


def test_fdr_control_on_pure_null_over_repeats():
    """On null data, expected FDR violations at q=0.05 are rare."""
    false_hits = 0
    for seed in range(20):
        rng = np.random.default_rng(100 + seed)
        m = rng.normal(0, 1, size=(300, 8))
        mask = np.array([False] * 4 + [True] * 4)
        res = diffexpr.moderated_t_test(m, mask)
        false_hits += len(res.significant(0.05))
    # 20 repeats x 300 genes: a handful of false positives at most
    assert false_hits <= 10


def test_effect_size_estimates_unbiased():
    """logFC estimates center on the planted effect."""
    rng = np.random.default_rng(5)
    n = 500
    m = rng.normal(8, 0.3, size=(n, 8))
    m[:, 4:] += 1.25
    mask = np.array([False] * 4 + [True] * 4)
    res = diffexpr.moderated_t_test(m, mask)
    fcs = [r.log_fc for r in res.rows]
    assert np.mean(fcs) == pytest.approx(1.25, abs=0.05)
