"""Schema sanity for the CI pipeline: valid YAML, pinned actions, the
jobs the repo's workflow contract requires."""

import pathlib
import re

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = (
    pathlib.Path(__file__).parent.parent / ".github" / "workflows" / "ci.yml"
)


@pytest.fixture(scope="module")
def workflow():
    doc = yaml.safe_load(WORKFLOW.read_text())
    assert isinstance(doc, dict)
    return doc


def _steps(workflow, job):
    return workflow["jobs"][job]["steps"]


def test_workflow_parses_and_has_triggers(workflow):
    # YAML 1.1 parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_required_jobs_exist(workflow):
    assert {"lint", "tests", "bench-smoke"} <= set(workflow["jobs"])


def test_workflow_cancels_superseded_runs(workflow):
    """A top-level concurrency group cancels stale runs of the same ref."""
    conc = workflow.get("concurrency")
    assert isinstance(conc, dict), "workflow needs a top-level concurrency group"
    assert conc.get("cancel-in-progress") is True
    group = conc.get("group", "")
    assert "github.ref" in group, "the group must be keyed on the ref"


def test_every_setup_python_step_caches_pip(workflow):
    """All setup-python steps (lint included) restore the pip cache."""
    setups = [
        step
        for job in workflow["jobs"].values()
        for step in job["steps"]
        if "setup-python" in step.get("uses", "")
    ]
    assert setups, "expected setup-python steps"
    for step in setups:
        assert step.get("with", {}).get("cache") == "pip", (
            f"setup-python step missing 'cache: pip': {step}"
        )


def test_all_actions_are_version_pinned(workflow):
    uses = [
        step["uses"]
        for job in workflow["jobs"].values()
        for step in job["steps"]
        if "uses" in step
    ]
    assert uses, "expected at least one action reference"
    for ref in uses:
        assert re.search(r"@v\d+", ref), f"unpinned action: {ref}"


def test_test_jobs_run_on_310_and_312(workflow):
    for job in ("tests", "bench-smoke"):
        versions = workflow["jobs"][job]["strategy"]["matrix"]["python-version"]
        assert versions == ["3.10", "3.12"]


def test_tests_job_runs_tier1(workflow):
    commands = [s.get("run", "") for s in _steps(workflow, "tests")]
    assert any("python -m pytest -x -q" in c for c in commands)


def test_bench_job_runs_smoke_harness_and_determinism(workflow):
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    smoke = [c for c in commands if "python -m repro.bench" in c and "--smoke" in c]
    assert smoke, "bench-smoke must run the harness in --smoke mode"
    assert any("--workers" in c for c in smoke)
    assert any("test_determinism" in c for c in commands)


def test_bench_job_diffs_sim_json_across_schedulers(workflow):
    """The smoke sweep must run under both schedulers and byte-compare."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    wheel = [c for c in commands if "--scheduler wheel" in c]
    assert wheel, "bench-smoke must rerun the sweep under the calendar wheel"
    assert any("cmp" in c and "wheel" in c for c in wheel)


def test_bench_job_diffs_sim_json_across_dispatch_modes(workflow):
    """The smoke sweep must rerun under scalar dispatch and byte-compare."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    scalar = [c for c in commands if "--dispatch scalar" in c]
    assert scalar, "bench-smoke must rerun the sweep under scalar dispatch"
    assert any("cmp" in c and "scalar" in c for c in scalar)


def test_bench_job_schema_checks_trajectory_record(workflow):
    """A --trajectory run is appended and its record schema-checked."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    traj = [c for c in commands if "--trajectory" in c]
    assert traj, "bench-smoke must exercise --trajectory"
    assert any("TrajectoryRecord.from_dict" in c for c in traj), (
        "the appended trajectory record must be schema-checked"
    )
    assert any("dispatch" in c for c in traj), (
        "the schema check must cover the dispatch field"
    )


def test_bench_job_runs_pricing_sweep_smoke(workflow):
    """The vectorized pricing sweep (equivalence + anchor checks) is in CI."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    pricing = [c for c in commands if "pricing_sweep" in c]
    assert pricing, "bench-smoke must run the pricing_sweep suite"
    assert any("--smoke" in c for c in pricing)


def test_bench_job_runs_waas_policy_smoke(workflow):
    """The WaaS suite races its policies in CI and byte-compares the
    parallel and sequential merges."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    waas = [c for c in commands if "repro.bench waas" in c]
    assert waas, "bench-smoke must run the waas suite"
    assert any("--smoke" in c for c in waas)
    assert any("--workers 4" in c and "--workers 1" in c and "cmp" in c for c in waas), (
        "the waas sim JSON must be byte-compared across worker counts"
    )


def test_bench_job_runs_storage_ablation_smoke(workflow):
    """The storage-backend ablation runs every backend in CI, byte-compares
    the parallel and sequential merges, and gp-replays the bundle of a
    suite whose tasks deploy non-NFS backends."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    storage = [c for c in commands if "repro.bench storage_ablation" in c]
    assert storage, "bench-smoke must run the storage_ablation suite"
    assert any("--smoke" in c for c in storage)
    assert any(
        "--workers 4" in c and "--workers 1" in c and "cmp" in c for c in storage
    ), "the storage sim JSON must be byte-compared across worker counts"
    assert any(
        "repro.provenance.cli" in c
        and "storage_ablation-smoke.bundle.json" in c
        for c in storage
    ), "the storage ablation bundle must round-trip through gp-replay"


def test_bench_job_compares_sim_json_against_committed_baseline(workflow):
    """Obs-off sim output is pinned byte-for-byte to the repo snapshot."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    assert any(
        "cmp" in c and "benchmarks/results/bench_smoke_sim.json" in c
        for c in commands
    ), "bench-smoke must byte-compare against the committed sim baseline"


def test_bench_job_runs_obs_smoke(workflow):
    """An instrumented sweep runs, leaves sim JSON unchanged, and every
    exported Chrome trace passes the schema check."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    obs = [c for c in commands if "--obs-out" in c]
    assert obs, "bench-smoke must run an --obs-out sweep"
    assert any("cmp" in c and "obs" in c for c in obs), (
        "the obs-on sim JSON must be byte-compared against the obs-off one"
    )
    assert any("repro.obs.validate" in c and "trace.json" in c for c in commands), (
        "exported traces must be schema-checked"
    )


def test_obs_baseline_is_committed_and_current(workflow):
    """The committed baseline exists and matches what the code produces."""
    baseline = (
        pathlib.Path(__file__).parent.parent
        / "benchmarks"
        / "results"
        / "bench_smoke_sim.json"
    )
    assert baseline.exists(), "commit benchmarks/results/bench_smoke_sim.json"
    import json

    doc = json.loads(baseline.read_text())
    assert doc["suite"] == "smoke"
    assert all(t["status"] == "ok" for t in doc["tasks"])


def test_bench_job_bundles_and_replays_smoke(workflow):
    """The smoke suite is bundled, replayed with gp-replay, and its
    bundled sim section byte-compared against the committed baseline."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    bundled = [c for c in commands if "--bundle-out" in c]
    assert bundled, "bench-smoke must export a provenance bundle"
    assert any("repro.provenance.cli" in c for c in bundled), (
        "the exported bundle must be replayed/verified with gp-replay"
    )
    assert any(
        "--export-sim" in c and "benchmarks/results/bench_smoke_sim.json" in c
        for c in bundled
    ), "the bundled sim must be byte-compared against the committed baseline"


def test_bench_job_replays_full_scheduler_dispatch_matrix(workflow):
    """Acceptance criterion: bundles replay byte-identically under every
    scheduler x dispatch combination."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    matrix = [
        c
        for c in commands
        if "--bundle-out" in c and "repro.provenance.cli" in c
        and all(word in c for word in ("heap", "wheel", "scalar", "cohort"))
    ]
    assert matrix, (
        "bench-smoke must replay bundles for all four scheduler x dispatch combos"
    )


def test_bench_job_rejects_corrupted_bundle(workflow):
    """The negative gate: a deliberately corrupted bundle must fail with
    the structured BundleError JSON, never verify."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    corrupt = [c for c in commands if "corrupted.bundle.json" in c]
    assert corrupt, "bench-smoke must exercise a corrupted bundle"
    step = corrupt[0]
    assert "unexpectedly verified" in step and "exit 1" in step, (
        "a verifying corrupted bundle must fail the job"
    )
    assert "bundle.section-digest" in step, (
        "the structured error code must be asserted"
    )


def test_bench_job_uploads_suite_artifact(workflow):
    uploads = [
        s for s in _steps(workflow, "bench-smoke")
        if "upload-artifact" in s.get("uses", "")
    ]
    assert uploads
    assert "bench-smoke-suite.json" in uploads[0]["with"]["path"]


def test_lint_job_runs_ruff(workflow):
    commands = [s.get("run", "") for s in _steps(workflow, "lint")]
    assert any("ruff check" in c for c in commands)


def test_bench_job_runs_critpath_and_validates_all_obs_artefacts(workflow):
    """A --critpath-out sweep runs, leaves sim JSON unchanged, and the
    validator covers critpath docs and gauge series alongside traces."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    critpath = [c for c in commands if "--critpath-out" in c]
    assert critpath, "bench-smoke must run a --critpath-out sweep"
    assert any("cmp" in c and "critpath" in c for c in critpath), (
        "the critpath-on sim JSON must be byte-compared against the obs-off one"
    )
    validate = [c for c in commands if "repro.obs.validate" in c]
    assert any(".critpath.json" in c for c in validate), (
        "exported critpath docs must be schema-checked"
    )
    assert any(".timeseries.jsonl" in c for c in validate), (
        "exported gauge series must be schema-checked"
    )


def test_bench_job_gates_trajectory_against_committed_baseline(workflow):
    """The trajectory --check gate runs against the committed baseline."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    gate = [c for c in commands if "repro.bench.trajectory" in c and "--check" in c]
    assert gate, "bench-smoke must run the trajectory --check gate"
    step = gate[0]
    assert "--critpath" in step, "the gate must pin critical-path layers"
    assert "benchmarks/results/trajectory_baseline.json" in step, (
        "the gate must use the committed baseline"
    )


def test_trajectory_baseline_is_committed():
    baseline = (
        pathlib.Path(__file__).parent.parent
        / "benchmarks"
        / "results"
        / "trajectory_baseline.json"
    )
    assert baseline.exists(), "commit benchmarks/results/trajectory_baseline.json"
    import json

    doc = json.loads(baseline.read_text())
    assert doc["critpath"]["layers"], "baseline must pin critical-path layers"


def test_bench_job_rejects_tampered_span_log(workflow):
    """The trace-diff negative gate: a bundle whose span log was perturbed
    must fail replay and the failure must name the diverging span."""
    commands = [s.get("run", "") for s in _steps(workflow, "bench-smoke")]
    tampered = [c for c in commands if "perturbed.bundle.json" in c]
    assert tampered, "bench-smoke must exercise a span-tampered bundle"
    step = tampered[0]
    assert "unexpectedly verified" in step and "exit 1" in step, (
        "a verifying tampered bundle must fail the job"
    )
    assert "first diverging span" in step, (
        "the replay output must name the first diverging span"
    )
    assert "condor.wait" in step, (
        "the asserted divergence must carry the span name"
    )
