"""Deployment timeline rendering from the simulation trace."""

from repro.core import CloudTestbed, usecase_topology
from repro.provision import GlobusProvision
from repro.reporting import collect_intervals, render_timeline
from repro.simcore import TraceLog


def test_empty_trace():
    assert "no deployment activity" in render_timeline(TraceLog())


def test_deployment_produces_timeline():
    bed = CloudTestbed(seed=60)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    intervals = collect_intervals(bed.ctx.trace)
    boots = [iv for iv in intervals if iv.label.startswith("boot")]
    converges = [iv for iv in intervals if iv.label.startswith("chef")]
    assert len(boots) == 4     # server, head, gridftp, worker
    assert len(converges) == 4
    for iv in intervals:
        assert iv.end > iv.start
    # converge of a node starts after its boot ends
    head = next(iv for iv in converges if "galaxy-condor" in iv.label)
    assert head.start >= min(b.end for b in boots) - 1e-9

    art = render_timeline(bed.ctx.trace)
    assert "chef simple-galaxy-condor" in art
    assert "#" in art
    # every bar line has the shared axis width
    lines = art.splitlines()[1:]
    assert len({ln.index("|") for ln in lines}) == 1
