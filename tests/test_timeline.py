"""Deployment timeline rendering from the simulation trace."""

from repro.core import CloudTestbed, usecase_topology
from repro.provision import GlobusProvision
from repro.reporting import collect_intervals, render_timeline
from repro.simcore import TraceLog


def test_empty_trace():
    assert "no deployment activity" in render_timeline(TraceLog())


def test_deployment_produces_timeline():
    bed = CloudTestbed(seed=60)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("m1.small", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    intervals = collect_intervals(bed.ctx.trace)
    boots = [iv for iv in intervals if iv.label.startswith("boot")]
    converges = [iv for iv in intervals if iv.label.startswith("chef")]
    assert len(boots) == 4     # server, head, gridftp, worker
    assert len(converges) == 4
    for iv in intervals:
        assert iv.end > iv.start
    # converge of a node starts after its boot ends
    head = next(iv for iv in converges if "galaxy-condor" in iv.label)
    assert head.start >= min(b.end for b in boots) - 1e-9

    art = render_timeline(bed.ctx.trace)
    assert "chef simple-galaxy-condor" in art
    assert "#" in art
    # every bar line has the shared axis width
    lines = art.splitlines()[1:]
    assert len({ln.index("|") for ln in lines}) == 1


def test_boot_interval_clamped_when_launch_predates_trace():
    """An `ec2 running` record with no matching launch still gets a bar."""
    trace = TraceLog()
    trace.emit(100.0, "chef", "converge-start", node="n1")
    trace.emit(130.0, "ec2", "running", instance="i-000001")
    trace.emit(160.0, "chef", "converge-done", node="n1", duration=60.0)
    intervals = collect_intervals(trace)
    boots = [iv for iv in intervals if iv.label == "boot i-000001"]
    assert len(boots) == 1
    # clamped to the start of the trace window, not dropped
    assert boots[0].start == 100.0
    assert boots[0].end == 130.0


def test_globus_tasks_appear_as_go_rows():
    trace = TraceLog()
    trace.emit(10.0, "globus", "task-submit", task="go-task-000001", src="a", dst="b")
    trace.emit(55.0, "globus", "task-done", task="go-task-000001", status="SUCCEEDED")
    # a done with no submit in the window clamps like the boot case
    trace.emit(70.0, "globus", "task-done", task="go-task-000002", status="FAILED")
    intervals = collect_intervals(trace)
    by_label = {iv.label: iv for iv in intervals}
    assert by_label["go go-task-000001"].start == 10.0
    assert by_label["go go-task-000001"].end == 55.0
    assert by_label["go go-task-000002"].start == 10.0  # trace start
    art = render_timeline(trace)
    assert "go go-task-000001" in art


def test_zero_span_docs_render_as_no_activity():
    """Obs docs whose tracks recorded no (finished) spans produce no
    intervals — and the renderer says so instead of dividing by zero."""
    from repro.obs import ObsRecorder

    rec = ObsRecorder(label="idle")
    assert collect_intervals(rec) == []
    assert "no deployment activity" in render_timeline(rec)

    # a doc with spans, all unfinished: still zero intervals
    rec.start("ec2.boot", track="ec2/i-1", instance="i-1")
    rec.start("chef.converge", track="chef/n1", node="n1")
    assert collect_intervals(rec) == []
    assert "no deployment activity" in render_timeline(rec)


def test_unknown_span_names_are_ignored():
    from repro.obs import ObsRecorder

    clock = {"t": 0.0}
    rec = ObsRecorder(label="s", clock=lambda: clock["t"])
    span = rec.start("transfer.window", track="x")  # not a timeline row
    clock["t"] = 5.0
    rec.finish(span)
    assert collect_intervals(rec) == []


def test_trace_with_no_go_tasks_renders_without_go_rows():
    trace = TraceLog()
    trace.emit(0.0, "ec2", "launch", instance="i-1")
    trace.emit(40.0, "ec2", "running", instance="i-1")
    trace.emit(100.0, "chef", "converge-done", node="n1", duration=60.0)
    intervals = collect_intervals(trace)
    assert sorted(iv.label for iv in intervals) == ["boot i-1", "chef n1"]
    art = render_timeline(trace)
    assert "go " not in art
    assert "boot i-1" in art and "chef n1" in art


def test_trace_with_unmatched_launch_yields_no_boot_interval():
    """A launch with no running record in the window is still pending —
    no interval, rather than a bar with a made-up end."""
    trace = TraceLog()
    trace.emit(0.0, "ec2", "launch", instance="i-1")
    trace.emit(10.0, "chef", "converge-done", node="n1", duration=5.0)
    labels = [iv.label for iv in collect_intervals(trace)]
    assert labels == ["chef n1"]


def test_boot_clamp_never_inverts_the_interval():
    """When the running record lands before the clamped start (trace
    begins after the boot completed), the bar is clamped, not inverted."""
    trace = TraceLog()
    trace.emit(50.0, "chef", "converge-start", node="n1")
    trace.emit(20.0, "ec2", "running", instance="i-1")  # before records[0].time
    trace.emit(60.0, "chef", "converge-done", node="n1", duration=10.0)
    boots = [iv for iv in collect_intervals(trace) if iv.label == "boot i-1"]
    assert len(boots) == 1
    assert boots[0].start <= boots[0].end
    assert boots[0].end == 20.0


def test_zero_duration_interval_renders_a_visible_bar():
    trace = TraceLog()
    trace.emit(10.0, "globus", "task-submit", task="t1")
    trace.emit(10.0, "globus", "task-done", task="t1", status="SUCCEEDED")
    trace.emit(10.0, "ec2", "launch", instance="i-1")
    trace.emit(60.0, "ec2", "running", instance="i-1")
    art = render_timeline(trace)
    go_line = next(ln for ln in art.splitlines() if ln.startswith("go t1"))
    assert "#" in go_line  # length floor of one cell, even at zero duration


def test_collect_intervals_accepts_obs_spans():
    from repro.obs import ObsRecorder

    clock = {"t": 0.0}
    rec = ObsRecorder(label="s", clock=lambda: clock["t"])
    boot = rec.start("ec2.boot", track="ec2/i-1", instance="i-1")
    clock["t"] = 90.0
    rec.finish(boot)
    conv = rec.start("chef.converge", track="chef/n1", node="n1")
    clock["t"] = 150.0
    rec.finish(conv)
    rec.start("chef.recipe", track="chef/n1", recipe="r")  # unfinished: skipped
    intervals = collect_intervals(rec)
    assert sorted(iv.label for iv in intervals) == ["boot i-1", "chef n1"]
    assert {iv.duration_s for iv in intervals} == {90.0, 60.0}
    assert "boot i-1" in render_timeline(rec)
