"""Tier-1 smoke coverage of the scale benchmark harness.

The full 128-node run lives in ``benchmarks/bench_scale.py`` (marked
``slow``); here a tiny topology exercises the same code path — deploy,
concurrent transfers, Condor load, metric collection — in well under a
second, and pins that the simulation metrics are seed-deterministic.
"""

import pytest

from repro.bench import scale

pytestmark = pytest.mark.bench


def test_smoke_config_completes_and_checks_shape():
    result = scale.run(scale.SMOKE_CONFIG)
    result.check_shape()
    assert result.nodes == scale.SMOKE_CONFIG.nodes
    assert result.transfers_succeeded == scale.SMOKE_CONFIG.transfers
    assert result.jobs_completed == scale.SMOKE_CONFIG.jobs
    assert result.events_per_sec > 0


def test_smoke_metrics_are_seed_deterministic():
    a = scale.run(scale.SMOKE_CONFIG)
    b = scale.run(scale.SMOKE_CONFIG)
    assert a.events_processed == b.events_processed
    assert a.peak_queue_depth == b.peak_queue_depth
    assert a.sim_seconds == b.sim_seconds
    assert a.bytes_transferred == b.bytes_transferred


def test_result_json_round_trips():
    import json

    result = scale.run(scale.SMOKE_CONFIG)
    doc = json.loads(result.to_json())
    assert doc["config"]["workers"] == scale.SMOKE_CONFIG.workers
    assert doc["events_processed"] == result.events_processed
    assert doc["peak_queue_depth"] == result.peak_queue_depth
