"""--bundle-out plumbing: span capture implied, bundle written, replayable.

The invariant chain: ``gp-bench --bundle-out DIR`` turns on obs capture
even without ``--obs-out``, writes one ``<suite>.bundle.json`` whose sim
section is exactly the run's ``sim_json()``, and the written file
verifies and replays through ``gp-replay`` in the same process tree.
"""

import json

import pytest

from repro.bench import cli
from repro.provenance import read_bundle, verify_bundle
from repro.provenance.cli import main as replay_main

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def bundle_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("bundles")
    code = cli.main(["scale", "--smoke", "-q", "--bundle-out", str(out)])
    assert code == 0
    return out / "scale-smoke.bundle.json"


def test_cli_writes_bundle_file(bundle_run, capsys):
    assert bundle_run.exists()
    doc = json.loads(bundle_run.read_text())
    assert doc["format"] == "gp-provenance-bundle"
    assert [s["name"] for s in doc["sections"]["scenario"]["specs"]]


def test_bundle_implies_span_capture(bundle_run):
    bundle = read_bundle(bundle_run)
    assert bundle.spans, "--bundle-out must capture spans without --obs-out"
    assert bundle.topology, "deployer topology annotations must be captured"


def test_bundle_sim_matches_committed_smoke_sections(bundle_run):
    bundle = read_bundle(bundle_run)
    assert bundle.sim["suite"] == "scale-smoke"
    assert {t["status"] for t in bundle.sim["tasks"]} == {"ok"}
    verify_bundle(bundle)


def test_written_bundle_replays_verified(bundle_run, capsys):
    assert replay_main([str(bundle_run)]) == 0
    assert "VERIFIED" in capsys.readouterr().out


def test_obs_out_and_bundle_out_compose(tmp_path, capsys):
    obs_dir = tmp_path / "obs"
    bundle_dir = tmp_path / "bundles"
    code = cli.main(
        [
            "usecase",
            "--smoke",
            "-q",
            "--obs-out",
            str(obs_dir),
            "--bundle-out",
            str(bundle_dir),
        ]
    )
    assert code == 0
    assert (obs_dir / "usecase.trace.json").exists()
    bundle = read_bundle(bundle_dir / "usecase-smoke.bundle.json")
    verify_bundle(bundle)
    out = capsys.readouterr().out
    assert "usecase-smoke.bundle.json" in out
    assert "digest" in out
