"""The ``--dispatch`` knob, end to end through harness, pool, and CLI.

Mirror of the ``--scheduler`` contract: picking a dispatch mode changes
how many queue entries cohorts cost, never what the simulation computes
— so the sim JSON must be byte-identical across modes at any worker
count, the chosen mode must be reported in the full result document and
the trajectory record, and it must be deliberately absent from the sim
document (the determinism pin cannot depend on it).
"""

import json

import pytest

from repro.bench import suites, trajectory
from repro.bench.cli import main as cli_main
from repro.bench.harness import run_suite
from repro.simcore import default_dispatch

pytestmark = pytest.mark.bench


def test_scalar_sim_json_identical_at_any_worker_count():
    suite = suites.scale_suite(smoke=True)
    cohort_seq = run_suite(suite, workers=1, dispatch="cohort")
    reference = cohort_seq.sim_json()
    for workers in (1, 3):
        scalar = run_suite(suite, workers=workers, dispatch="scalar")
        assert scalar.ok
        assert scalar.sim_json() == reference


def test_to_dict_reports_dispatch_but_sim_dict_omits_it():
    result = run_suite(suites.usecase_suite(smoke=True), dispatch="scalar")
    assert result.dispatch == "scalar"
    assert result.to_dict()["dispatch"] == "scalar"
    assert "dispatch" not in result.sim_dict()
    assert '"dispatch"' not in result.sim_json()


def test_default_dispatch_is_recorded_when_unpinned():
    result = run_suite(suites.usecase_suite(smoke=True))
    assert result.dispatch == default_dispatch()


def test_worker_subprocesses_honor_the_dispatch_mode():
    """The spec pipe must carry the dispatch mode to pool workers too."""
    result = run_suite(suites.usecase_suite(smoke=True), workers=2, dispatch="scalar")
    assert result.ok
    assert result.dispatch == "scalar"


def test_unknown_dispatch_is_rejected_up_front():
    with pytest.raises(ValueError, match="unknown dispatch"):
        run_suite(suites.usecase_suite(smoke=True), dispatch="vectorized")


def test_dispatch_and_scheduler_compose():
    """All four scheduler x dispatch corners agree on the sim JSON."""
    suite = suites.scale_suite(smoke=True)
    reference = None
    for scheduler in ("heap", "wheel"):
        for dispatch in ("scalar", "cohort"):
            result = run_suite(suite, scheduler=scheduler, dispatch=dispatch)
            assert result.ok
            if reference is None:
                reference = result.sim_json()
            else:
                assert result.sim_json() == reference


def test_trajectory_record_carries_dispatch():
    result = run_suite(suites.scale_suite(smoke=True), dispatch="cohort")
    record = trajectory.from_suite_result(result, commit="abc", date="d")
    assert record.dispatch == "cohort"
    assert record.to_dict()["dispatch"] == "cohort"
    # records written before the field existed default to the old path
    old_doc = {k: v for k, v in record.to_dict().items() if k != "dispatch"}
    assert trajectory.TrajectoryRecord.from_dict(old_doc).dispatch == "scalar"


def test_cli_dispatch_flag_round_trip(tmp_path, capsys):
    """``gp-bench --dispatch scalar`` writes the same sim JSON as cohort."""
    outputs = {}
    for dispatch in ("cohort", "scalar"):
        out = tmp_path / f"{dispatch}.json"
        rc = cli_main(
            [
                "scale",
                "--smoke",
                "-q",
                "--dispatch",
                dispatch,
                "--sim-json-out",
                str(out),
            ]
        )
        assert rc == 0
        outputs[dispatch] = out.read_text()
        assert f"dispatch={dispatch}" in capsys.readouterr().out
    assert outputs["cohort"] == outputs["scalar"]
    assert json.loads(outputs["scalar"])  # well-formed


def test_cli_list_marks_cohort_eligible_suites(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "scale: " in out and "cohorts: yes" in out
    # the pricing sweep never enters the event loop
    pricing_line = next(
        line for line in out.splitlines() if line.startswith("pricing_sweep:")
    )
    assert "cohorts: no" in pricing_line


def test_cli_warns_when_dispatch_cannot_matter(capsys):
    rc = cli_main(["pricing_sweep", "--smoke", "-q", "--dispatch", "scalar"])
    assert rc == 0
    assert "schedules event cohorts" in capsys.readouterr().err
