"""Fast smoke checks of the experiment drivers (full runs live in benchmarks/)."""

import pytest

from repro.bench import ablations, figure10, figure11, pricing_sweep, usecase
from repro.calibration import GB, MB

pytestmark = pytest.mark.bench


def test_figure10_single_column():
    row = figure10.run_one("c1.medium")
    assert 5 < row.exec_min < 9
    assert 5 < row.deploy_min < 9
    assert 0.005 < row.cost_usd < 0.02


def test_figure10_render_contains_comparison():
    result = figure10.run(instance_types=["m1.small", "m1.xlarge"])
    text = result.render()
    assert "Figure 10" in text
    assert "paper" in text
    with pytest.raises(StopIteration):
        result.row("c1.medium")


def test_figure11_small_sweep_shape():
    result = figure11.run(sizes=[1 * MB, 100 * MB])
    result.check_shape()
    text = result.render()
    assert "Globus Transfer" in text and "FTP" in text


def test_figure11_http_refusal_recorded_as_none():
    result = figure11.run(sizes=[3 * GB])
    assert result.rates["http"] == [None]
    assert "refused" in result.render()


def test_usecase_bench_render():
    bench = usecase.run()
    bench.check_shape()
    assert "dynamic cluster expansion" in bench.render()


def test_pricing_sweep_smoke_shape():
    result = pricing_sweep.run(pricing_sweep.SMOKE_CONFIG)
    result.check_shape()
    assert result.scalar_max_abs_diff == 0.0
    assert result.scalar_check_jobs == pricing_sweep.SMOKE_CONFIG.n_jobs
    assert "Pricing sweep" in result.render()
    doc = result.to_dict()
    assert set(doc["total_seconds"]) == set(result.instance_types)
    assert "rendered" in doc


def test_stream_ablation_two_points():
    result = ablations.run_stream_ablation(streams=[1, 4])
    assert result.rates_mbps[1] > 2.5 * result.rates_mbps[0]
    assert "parallel-stream" in result.render()


def test_pool_width_two_points():
    result = ablations.run_pool_width_ablation(widths=[1, 4])
    assert result.makespans_s[0] > 2 * result.makespans_s[1]


def test_ami_ablation_speedup():
    result = ablations.run_ami_ablation()
    assert result.speedup > 1.8
    assert "x)" in result.render()


def test_billing_ablation_orderings():
    result = ablations.run_billing_ablation()
    result.check_shape()
    assert "hourly" in result.render()
