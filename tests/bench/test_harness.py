"""Harness contract: deterministic merge, crash isolation, timeouts.

Everything here must hold on a 1-core host — no test asserts CPU-bound
speedup; concurrency is pinned with sleep-bound (I/O-shaped) tasks that
overlap regardless of core count.
"""

import json
import time

import pytest

from repro.bench import harness, suites
from repro.bench.harness import BenchSpec, BenchSuite, run_spec, run_suite

pytestmark = pytest.mark.bench


def _suite(*specs: BenchSpec) -> BenchSuite:
    return BenchSuite("test", "ad-hoc", tuple(specs))


# ---------------------------------------------------------------------------
# Specs and single-task execution
# ---------------------------------------------------------------------------


def test_spec_round_trips_through_dict():
    spec = BenchSpec("a", "selftest.sleep", {"seconds": 0.01}, timeout_s=5.0)
    assert BenchSpec.from_dict(spec.to_dict()) == spec


def test_run_spec_ok_payload():
    result = run_spec(BenchSpec("s", "selftest.sleep", {"seconds": 0.001}))
    assert result.ok
    assert result.payload == {"slept": 0.001}
    assert result.wall_seconds > 0


def test_run_spec_failure_carries_traceback():
    result = run_spec(BenchSpec("b", "selftest.boom", {"message": "xyzzy"}))
    assert result.status == "failed"
    assert result.payload is None
    assert "RuntimeError: xyzzy" in result.error


def test_run_spec_unknown_task_is_a_failed_record():
    result = run_spec(BenchSpec("nope", "no.such.task"))
    assert result.status == "failed"
    assert "unknown benchmark task" in result.error


# ---------------------------------------------------------------------------
# Merge determinism
# ---------------------------------------------------------------------------


def test_parallel_merge_byte_identical_to_sequential_for_smoke_grid():
    suite = suites.scale_suite(smoke=True)
    seq = run_suite(suite, workers=1)
    par = run_suite(suite, workers=3)
    assert seq.ok and par.ok
    assert seq.sim_json() == par.sim_json()


def test_merge_preserves_spec_order_not_completion_order():
    # the slow task is first; with 2 workers the fast ones finish earlier
    suite = _suite(
        BenchSpec("slow", "selftest.sleep", {"seconds": 0.3}),
        BenchSpec("fast1", "selftest.sleep", {"seconds": 0.01}),
        BenchSpec("fast2", "selftest.sleep", {"seconds": 0.01}),
    )
    result = run_suite(suite, workers=2)
    assert [t.spec.name for t in result.tasks] == ["slow", "fast1", "fast2"]


def test_sim_json_strips_host_dependent_fields():
    result = run_suite(suites.scale_suite(smoke=True), workers=1)
    text = result.sim_json()
    assert '"wall_seconds"' not in text
    assert '"events_per_sec"' not in text
    assert '"events_processed"' in text  # the deterministic counters stay
    doc = json.loads(text)
    assert doc["config_digest"] == result.config_digest()


def test_config_digest_tracks_spec_changes():
    a = _suite(BenchSpec("x", "selftest.sleep", {"seconds": 0.1}))
    b = _suite(BenchSpec("x", "selftest.sleep", {"seconds": 0.2}))
    assert a.config_digest() != b.config_digest()
    assert a.config_digest() == _suite(*a.specs).config_digest()


# ---------------------------------------------------------------------------
# Crash isolation and timeouts
# ---------------------------------------------------------------------------


def test_exception_in_worker_does_not_poison_the_pool():
    suite = _suite(
        BenchSpec("boom1", "selftest.boom"),
        BenchSpec("ok1", "selftest.sleep", {"seconds": 0.01}),
        BenchSpec("boom2", "selftest.boom"),
        BenchSpec("ok2", "selftest.sleep", {"seconds": 0.01}),
    )
    result = run_suite(suite, workers=2)
    assert [t.status for t in result.tasks] == ["failed", "ok", "failed", "ok"]
    assert "RuntimeError" in result.tasks[0].error
    assert not result.ok
    assert result.counts() == {"ok": 2, "failed": 2, "timeout": 0}


def test_hard_worker_death_is_isolated_and_reported():
    suite = _suite(
        BenchSpec("dies", "selftest.exit", {"code": 17}),
        BenchSpec("ok1", "selftest.sleep", {"seconds": 0.01}),
        BenchSpec("ok2", "selftest.sleep", {"seconds": 0.01}),
    )
    result = run_suite(suite, workers=2)
    dies, ok1, ok2 = result.tasks
    assert dies.status == "failed"
    assert "worker process died" in dies.error
    assert "17" in dies.error
    assert ok1.ok and ok2.ok


def test_timeout_terminates_the_task_but_not_the_suite():
    suite = _suite(
        BenchSpec("hang", "selftest.sleep", {"seconds": 60}, timeout_s=0.3),
        BenchSpec("ok", "selftest.sleep", {"seconds": 0.01}),
    )
    t0 = time.perf_counter()
    result = run_suite(suite, workers=2)
    wall = time.perf_counter() - t0
    assert wall < 10  # nobody waited for the 60s sleep
    hang, ok = result.tasks
    assert hang.status == "timeout"
    assert "timed out" in hang.error
    assert ok.ok


def test_pool_overlaps_sleep_bound_tasks():
    """Fan-out pins >2x overlap even on a single-core host."""
    naptime = 0.25
    suite = _suite(
        *(BenchSpec(f"s{i}", "selftest.sleep", {"seconds": naptime}) for i in range(4))
    )
    t0 = time.perf_counter()
    result = run_suite(suite, workers=4)
    wall = time.perf_counter() - t0
    assert result.ok
    assert wall < 2 * naptime  # sequential would be >= 4 * naptime


def test_worker_cap_does_not_exceed_spec_count():
    suite = _suite(BenchSpec("only", "selftest.sleep", {"seconds": 0.01}))
    result = run_suite(suite, workers=8)
    assert result.ok and len(result.tasks) == 1


# ---------------------------------------------------------------------------
# Suite registry
# ---------------------------------------------------------------------------


def test_every_registered_suite_builds_in_both_shapes():
    for name in suites.names():
        full = suites.get(name)
        smoke = suites.get(name, smoke=True)
        assert full.specs and smoke.specs
        for spec in full.specs + smoke.specs:
            harness.resolve_task(spec.task)  # raises if unknown


def test_combined_suite_concatenates_in_registry_order():
    combined = suites.combined(smoke=True)
    names = [s.name for s in combined.specs]
    assert names[0].startswith("fig10/")
    assert names[-1].startswith("storage/")
    assert combined.name == "smoke"
    assert suites.combined(["scale"], smoke=True).name == "scale-smoke"


def test_unknown_suite_name_raises():
    with pytest.raises(KeyError):
        suites.get("nope")
