"""The waas suite through the harness: shape, registry, determinism."""

from dataclasses import replace

import pytest

from repro.bench import suites, waas
from repro.bench.harness import BenchSuite, run_suite

pytestmark = pytest.mark.bench

# one cheap shape shared by the determinism tests (the full smoke grid
# runs in CI; here a single overload scenario keeps the suite fast)
TINY = replace(
    waas.SMOKE_CONFIG, tenants=6, workflows=12, arrival_rate_per_s=0.05,
    max_in_flight=8,
)


def _tiny_suite(policy: str = "queue_depth") -> BenchSuite:
    cfg = replace(TINY, policy=policy)
    return BenchSuite("waas-tiny", "ad-hoc", (suites._waas_spec(cfg),))


def test_smoke_config_runs_and_checks_shape():
    result = waas.run(TINY)
    result.check_shape()
    assert result.workflows_completed == 12
    assert result.policy == {"name": "static"}
    assert result.scaling_events == []
    assert result.cost_proportional_usd > 0
    assert result.plan_work_s > 0
    assert result.deploy_sim_seconds > 0


def test_autoscaled_config_beats_static_smoke_baseline():
    static = waas.run(waas.SMOKE_CONFIG)
    elastic = waas.run(replace(waas.SMOKE_CONFIG, policy="queue_depth"))
    static.check_shape()
    elastic.check_shape()
    assert elastic.scale_ups > 0
    assert elastic.peak_workers > 1
    # the smoke shape is tuned so elasticity wins on SLA
    assert elastic.sla_attainment > static.sla_attainment


def test_result_round_trips_through_config_dict():
    result = waas.run(TINY)
    doc = result.to_dict()
    rebuilt = waas.WaasConfig(**doc["config"])
    assert rebuilt == TINY


def test_suite_is_registered():
    assert "waas" in suites.names()
    suite = suites.waas_suite(smoke=True)
    assert [s.task for s in suite.specs] == ["waas.run"] * 3
    policies = [s.name.split("/")[1] for s in suite.specs]
    assert policies == ["static", "queue_depth", "deadline_slack"]
    combined = suites.combined(None, smoke=True)
    assert any(s.task == "waas.run" for s in combined.specs)


def test_sim_json_invariant_across_workers():
    suite = _tiny_suite()
    seq = run_suite(suite, workers=1)
    par = run_suite(suite, workers=2)
    assert seq.ok and par.ok
    assert seq.sim_json() == par.sim_json()


def test_sim_json_invariant_across_dispatch_and_scheduler():
    suite = _tiny_suite()
    base = run_suite(suite, workers=1)
    scalar = run_suite(suite, workers=1, dispatch="scalar")
    wheel = run_suite(suite, workers=1, scheduler="wheel")
    assert base.ok and scalar.ok and wheel.ok
    assert base.sim_json() == scalar.sim_json() == wheel.sim_json()


def test_sim_json_invariant_under_observability():
    suite = _tiny_suite()
    off = run_suite(suite, workers=1)
    on = run_suite(suite, workers=1, obs=True)
    assert off.ok and on.ok
    assert off.sim_json() == on.sim_json()
    # obs actually recorded something while leaving the sim untouched
    assert on.obs_docs(), "expected waas spans/metrics in the obs stream"
