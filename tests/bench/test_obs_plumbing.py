"""--obs-out plumbing: capture in workers, doc forwarding, artefact files.

The invariants: obs docs ride back from worker processes intact, they
never leak into result/sim JSON (the determinism baselines), and the CLI
writes one schema-valid trace file set per constituent suite.
"""

import json
import pathlib

from repro.bench import cli, suites
from repro.bench.harness import BenchSpec, BenchSuite, run_spec, run_suite
from repro.obs.validate import check_chrome_trace

SMOKE = BenchSuite(
    "plumbing-smoke",
    "usecase smoke under observation",
    (BenchSpec(name="usecase/expansion", task="usecase.expansion"),),
)


def test_run_spec_obs_collects_relabelled_docs():
    result = run_spec(SMOKE.specs[0], obs=True)
    assert result.ok
    assert result.obs, "expected at least one obs doc"
    for doc in result.obs:
        assert doc["label"].startswith("usecase/expansion:sim-")
        assert doc["spans"]
    # obs off -> no docs
    assert run_spec(SMOKE.specs[0]).obs is None


def test_obs_docs_identical_sequential_vs_pooled():
    seq = run_suite(SMOKE, workers=1, obs=True)
    pooled = run_suite(SMOKE, workers=2, obs=True)
    assert seq.obs_docs() == pooled.obs_docs()
    assert seq.obs_docs(), "expected docs from the pooled run"


def test_obs_absent_from_result_and_sim_json():
    with_obs = run_suite(SMOKE, workers=1, obs=True)
    without = run_suite(SMOKE, workers=1, obs=False)
    assert "obs" not in json.dumps(with_obs.to_dict())
    assert with_obs.sim_json() == without.sim_json()


def test_failed_task_carries_no_docs():
    suite = BenchSuite(
        "boom", "scripted failure", (BenchSpec(name="x/boom", task="selftest.boom"),)
    )
    result = run_suite(suite, workers=1, obs=True)
    assert result.tasks[0].status == "failed"
    assert result.tasks[0].obs is None


def test_write_obs_outputs_one_file_set_per_suite(tmp_path):
    suite = suites.combined(["usecase", "fig11"], smoke=True)
    result = run_suite(suite, workers=1, obs=True)
    written = cli.write_obs_outputs(result, tmp_path)
    names = sorted(p.name for p in written)
    assert names == [
        "fig11.spans.jsonl",
        "fig11.summary.txt",
        "fig11.timeseries.jsonl",
        "fig11.trace.json",
        "usecase.spans.jsonl",
        "usecase.summary.txt",
        "usecase.timeseries.jsonl",
        "usecase.trace.json",
    ]
    for trace in tmp_path.glob("*.trace.json"):
        assert check_chrome_trace(json.loads(trace.read_text())) == []
    assert "span summary" in (tmp_path / "usecase.summary.txt").read_text()
    # gauge samples rode along and parse line by line
    lines = (tmp_path / "usecase.timeseries.jsonl").read_text().splitlines()
    assert lines and all(
        {"context", "series", "t", "value"} == set(json.loads(line)) for line in lines
    )


def test_suite_obs_support_flags():
    assert suites.get("usecase").supports_obs
    assert not suites.get("pricing_sweep").supports_obs
    assert suites.combined(["pricing_sweep"]).supports_obs is False
    assert suites.combined(["pricing_sweep", "usecase"]).supports_obs is True


def test_cli_obs_out_flag_end_to_end(tmp_path, capsys):
    out = tmp_path / "obs"
    code = cli.main(
        ["usecase", "--smoke", "--obs-out", str(out), "-q"]
    )
    assert code == 0
    assert check_chrome_trace(json.loads((out / "usecase.trace.json").read_text())) == []
    assert (out / "usecase.spans.jsonl").read_text().strip()
    assert "usecase.trace.json" in capsys.readouterr().out


def test_committed_smoke_baseline_regenerates_byte_identically():
    """The obs-off determinism pin: rebuilding the smoke sweep's sim JSON
    reproduces benchmarks/results/bench_smoke_sim.json exactly."""
    committed = (
        pathlib.Path(__file__).parent.parent.parent
        / "benchmarks"
        / "results"
        / "bench_smoke_sim.json"
    ).read_text()
    result = run_suite(suites.combined(None, smoke=True), workers=1)
    assert result.sim_json() + "\n" == committed


def test_cli_list_marks_obs_support(capsys):
    assert cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "pricing_sweep" in out
    assert "obs-out: no" in out
    assert "obs-out: yes" in out
