"""Determinism regression: the perf fast paths must not move a single byte.

Every optimisation in the kernel, the transfer model, and the Condor
matchmaker is required to preserve event order exactly.  The strongest
check we have is the committed paper artefacts: regenerating Fig. 10,
Fig. 11, and the use-case table with the same seed must reproduce the
files under ``benchmarks/results/`` byte for byte.
"""

import pathlib

import pytest

from repro.bench import figure10, figure11, usecase

pytestmark = pytest.mark.bench

RESULTS_DIR = (
    pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "results"
)


@pytest.mark.parametrize(
    "name, module",
    [("figure10", figure10), ("figure11", figure11), ("usecase", usecase)],
)
def test_artefact_regenerates_byte_identically(name, module):
    committed = RESULTS_DIR / f"{name}.txt"
    if not committed.exists():
        pytest.skip(f"no committed baseline {committed}")
    regenerated = module.run().render() + "\n"
    assert regenerated == committed.read_text(), (
        f"{name} drifted: a perf change altered simulation behaviour"
    )
