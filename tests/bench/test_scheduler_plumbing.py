"""The ``--scheduler`` knob, end to end through harness, pool, and CLI.

The contract: picking a scheduler changes *how fast* the kernel runs,
never *what it computes* — so the sim JSON must be byte-identical across
schedulers at any worker count, the chosen scheduler must be reported in
the full result document, and it must be deliberately absent from the
sim document (the determinism pin cannot depend on it).
"""

import json

import pytest

from repro.bench import suites
from repro.bench.cli import main as cli_main
from repro.bench.harness import run_suite
from repro.simcore import default_scheduler

pytestmark = pytest.mark.bench


def test_wheel_sim_json_identical_at_any_worker_count():
    suite = suites.scale_suite(smoke=True)
    heap_seq = run_suite(suite, workers=1, scheduler="heap")
    reference = heap_seq.sim_json()
    for workers in (1, 3):
        wheel = run_suite(suite, workers=workers, scheduler="wheel")
        assert wheel.ok
        assert wheel.sim_json() == reference


def test_to_dict_reports_scheduler_but_sim_dict_omits_it():
    result = run_suite(suites.usecase_suite(smoke=True), scheduler="wheel")
    assert result.scheduler == "wheel"
    assert result.to_dict()["scheduler"] == "wheel"
    assert "scheduler" not in result.sim_dict()
    assert '"scheduler"' not in result.sim_json()


def test_default_scheduler_is_recorded_when_unpinned():
    result = run_suite(suites.usecase_suite(smoke=True))
    assert result.scheduler == default_scheduler()


def test_worker_subprocesses_honor_the_scheduler():
    """The spec pipe must carry the scheduler to pool workers too."""
    result = run_suite(suites.usecase_suite(smoke=True), workers=2, scheduler="wheel")
    assert result.ok
    assert result.scheduler == "wheel"


def test_unknown_scheduler_is_rejected_up_front():
    with pytest.raises(ValueError, match="unknown scheduler"):
        run_suite(suites.usecase_suite(smoke=True), scheduler="fibheap")


def test_cli_scheduler_flag_round_trip(tmp_path, capsys):
    """``gp-bench --scheduler wheel`` writes the same sim JSON as heap."""
    outputs = {}
    for scheduler in ("heap", "wheel"):
        out = tmp_path / f"{scheduler}.json"
        rc = cli_main(
            [
                "usecase",
                "--smoke",
                "-q",
                "--scheduler",
                scheduler,
                "--sim-json-out",
                str(out),
            ]
        )
        assert rc == 0
        outputs[scheduler] = out.read_text()
        assert f"scheduler={scheduler}" in capsys.readouterr().out
    assert outputs["heap"] == outputs["wheel"]
    assert json.loads(outputs["wheel"])  # well-formed
