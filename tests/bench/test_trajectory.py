"""Trajectory artefact: append, round-trip, aggregation, rendering."""

import json

import pytest

from repro.bench import suites, trajectory
from repro.bench.harness import run_suite

pytestmark = pytest.mark.bench


def _record(**overrides):
    doc = dict(
        commit="abc1234",
        date="2026-08-07T00:00:00+00:00",
        suite="scale",
        config_digest="0" * 16,
        workers=4,
        wall_seconds=1.25,
        events_processed=20000,
        events_per_sec=16000.0,
        tasks_ok=4,
        tasks_failed=0,
    )
    doc.update(overrides)
    return trajectory.TrajectoryRecord(**doc)


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "traj.json"
    assert trajectory.load(path) == []
    trajectory.append(_record(commit="aaaa111"), path)
    records = trajectory.append(_record(commit="bbbb222"), path)
    assert [r.commit for r in records] == ["aaaa111", "bbbb222"]
    assert trajectory.load(path) == records
    # the file is a plain JSON list, readable without this module
    doc = json.loads(path.read_text())
    assert [d["commit"] for d in doc] == ["aaaa111", "bbbb222"]


def test_from_suite_result_aggregates_kernel_counters():
    result = run_suite(suites.scale_suite(smoke=True), workers=1)
    record = trajectory.from_suite_result(result, commit="c0ffee1", date="2026-08-07")
    assert record.commit == "c0ffee1"
    assert record.suite == result.suite
    assert record.config_digest == result.config_digest()
    expected_events = sum(t.payload["events_processed"] for t in result.tasks)
    assert record.events_processed == expected_events
    assert record.events_per_sec > 0
    assert record.tasks_ok == len(result.tasks)
    assert record.tasks_failed == 0


def test_from_suite_result_without_kernel_counters():
    result = run_suite(suites.fig11_suite(smoke=True), workers=1)
    record = trajectory.from_suite_result(result, commit="c0ffee1", date="2026-08-07")
    assert record.events_processed == 0
    assert record.events_per_sec == 0.0


def test_render_shows_most_recent_commits(tmp_path):
    path = tmp_path / "traj.json"
    for i in range(12):
        trajectory.append(_record(commit=f"commit{i:02d}"), path)
    records = trajectory.load(path)
    table = trajectory.render(records, last=3)
    assert "commit11" in table and "commit09" in table
    assert "commit00" not in table
    assert "12 runs tracked" in table


def test_current_commit_returns_short_hash_or_unknown():
    commit = trajectory.current_commit()
    assert commit == "unknown" or (4 <= len(commit) <= 40)


# -- the --check regression gate -------------------------------------------


def _baseline(**overrides):
    doc = {
        "suite": "scale",
        "min_events_per_sec": 10000,
        "reference_events_per_sec": 16000,
        "critpath": {
            "layers": {"boot": 60.0, "execute": 40.0},
            "makespan_s": 100.0,
            "tolerance_s": 1e-6,
        },
    }
    doc.update(overrides)
    return doc


def _critpath(**overrides):
    doc = {"layers": {"boot": 60.0, "execute": 40.0}, "makespan_s": 100.0}
    doc.update(overrides)
    return doc


def test_check_passes_within_bounds():
    failures = trajectory.check_against_baseline(
        _baseline(), [_record()], _critpath()
    )
    assert failures == []


def test_check_fails_without_matching_record():
    failures = trajectory.check_against_baseline(
        _baseline(), [_record(suite="waas")], _critpath()
    )
    assert any("no trajectory record" in f for f in failures)


def test_check_fails_on_failed_tasks_and_slow_runs():
    failures = trajectory.check_against_baseline(
        _baseline(), [_record(tasks_failed=1)], _critpath()
    )
    assert any("failed task" in f for f in failures)
    failures = trajectory.check_against_baseline(
        _baseline(), [_record(events_per_sec=9000.0)], _critpath()
    )
    assert any("events/sec regressed" in f for f in failures)


def test_check_names_the_drifted_layer():
    critpath = _critpath(layers={"boot": 65.0, "execute": 40.0})
    failures = trajectory.check_against_baseline(
        _baseline(), [_record()], critpath
    )
    assert any("layer 'boot' drifted" in f for f in failures)
    # a layer present on only one side is drift too, not a silent skip
    critpath = _critpath(layers={"boot": 60.0, "execute": 40.0, "queue": 3.0})
    failures = trajectory.check_against_baseline(
        _baseline(), [_record()], critpath
    )
    assert any("layer 'queue' drifted" in f for f in failures)


def test_check_names_makespan_drift_and_missing_critpath():
    failures = trajectory.check_against_baseline(
        _baseline(), [_record()], _critpath(makespan_s=99.0)
    )
    assert any("makespan drifted" in f for f in failures)
    failures = trajectory.check_against_baseline(_baseline(), [_record()], None)
    assert any("no --critpath file" in f for f in failures)


def test_check_uses_latest_matching_record():
    records = [_record(events_per_sec=5000.0), _record(events_per_sec=20000.0)]
    assert trajectory.check_against_baseline(_baseline(), records, _critpath()) == []


def test_main_check_exit_codes(tmp_path, capsys):
    traj = tmp_path / "traj.json"
    trajectory.append(_record(), traj)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(_baseline()))
    critpath = tmp_path / "scale.critpath.json"
    critpath.write_text(json.dumps(_critpath()))

    ok = trajectory.main(
        ["--check", "--trajectory", str(traj), "--baseline", str(baseline),
         "--critpath", str(critpath)]
    )
    assert ok == 0
    assert "within baseline bounds" in capsys.readouterr().out

    critpath.write_text(json.dumps(_critpath(layers={"boot": 65.0, "execute": 40.0})))
    bad = trajectory.main(
        ["--check", "--trajectory", str(traj), "--baseline", str(baseline),
         "--critpath", str(critpath)]
    )
    assert bad == 1
    assert "trajectory check FAILED" in capsys.readouterr().err

    assert trajectory.main(
        ["--check", "--trajectory", str(traj),
         "--baseline", str(tmp_path / "missing.json")]
    ) == 2
    assert trajectory.main(
        ["--check", "--trajectory", str(traj), "--baseline", str(baseline),
         "--critpath", str(tmp_path / "missing.critpath.json")]
    ) == 2


def test_main_renders_table_without_check(tmp_path, capsys):
    traj = tmp_path / "traj.json"
    trajectory.append(_record(), traj)
    assert trajectory.main(["--trajectory", str(traj)]) == 0
    assert "Perf trajectory" in capsys.readouterr().out


def test_committed_baseline_matches_the_schema():
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / (
        "benchmarks/results/trajectory_baseline.json"
    )
    doc = json.loads(path.read_text())
    assert doc["suite"] == "scale-smoke"
    assert doc["min_events_per_sec"] > 0
    layers = doc["critpath"]["layers"]
    assert layers and all(v >= 0 for v in layers.values())
    assert doc["critpath"]["makespan_s"] > 0
