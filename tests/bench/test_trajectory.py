"""Trajectory artefact: append, round-trip, aggregation, rendering."""

import json

import pytest

from repro.bench import suites, trajectory
from repro.bench.harness import run_suite

pytestmark = pytest.mark.bench


def _record(**overrides):
    doc = dict(
        commit="abc1234",
        date="2026-08-07T00:00:00+00:00",
        suite="scale",
        config_digest="0" * 16,
        workers=4,
        wall_seconds=1.25,
        events_processed=20000,
        events_per_sec=16000.0,
        tasks_ok=4,
        tasks_failed=0,
    )
    doc.update(overrides)
    return trajectory.TrajectoryRecord(**doc)


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "traj.json"
    assert trajectory.load(path) == []
    trajectory.append(_record(commit="aaaa111"), path)
    records = trajectory.append(_record(commit="bbbb222"), path)
    assert [r.commit for r in records] == ["aaaa111", "bbbb222"]
    assert trajectory.load(path) == records
    # the file is a plain JSON list, readable without this module
    doc = json.loads(path.read_text())
    assert [d["commit"] for d in doc] == ["aaaa111", "bbbb222"]


def test_from_suite_result_aggregates_kernel_counters():
    result = run_suite(suites.scale_suite(smoke=True), workers=1)
    record = trajectory.from_suite_result(result, commit="c0ffee1", date="2026-08-07")
    assert record.commit == "c0ffee1"
    assert record.suite == result.suite
    assert record.config_digest == result.config_digest()
    expected_events = sum(t.payload["events_processed"] for t in result.tasks)
    assert record.events_processed == expected_events
    assert record.events_per_sec > 0
    assert record.tasks_ok == len(result.tasks)
    assert record.tasks_failed == 0


def test_from_suite_result_without_kernel_counters():
    result = run_suite(suites.fig11_suite(smoke=True), workers=1)
    record = trajectory.from_suite_result(result, commit="c0ffee1", date="2026-08-07")
    assert record.events_processed == 0
    assert record.events_per_sec == 0.0


def test_render_shows_most_recent_commits(tmp_path):
    path = tmp_path / "traj.json"
    for i in range(12):
        trajectory.append(_record(commit=f"commit{i:02d}"), path)
    records = trajectory.load(path)
    table = trajectory.render(records, last=3)
    assert "commit11" in table and "commit09" in table
    assert "commit00" not in table
    assert "12 runs tracked" in table


def test_current_commit_returns_short_hash_or_unknown():
    commit = trajectory.current_commit()
    assert commit == "unknown" or (4 <= len(commit) <= 40)
