"""The payload failure gate: ok-status tasks that lost work exit 1."""

import pytest

from repro.bench import cli, suites
from repro.bench.harness import BenchSpec, BenchSuite, run_suite

pytestmark = pytest.mark.bench


def _suite(*specs: BenchSpec) -> BenchSuite:
    return BenchSuite("gate", "ad-hoc", tuple(specs))


def test_payload_failures_sums_across_ok_tasks():
    result = run_suite(
        _suite(
            BenchSpec("p1", "selftest.poisoned", {"tasks_failed": 2}),
            BenchSpec("p2", "selftest.poisoned", {"tasks_failed": 3}),
            BenchSpec("clean", "selftest.sleep", {"seconds": 0.001}),
        ),
        workers=1,
    )
    assert result.ok  # every task *returned*
    assert result.payload_failures() == 5


def test_payload_failures_ignores_failed_tasks_and_non_counts():
    result = run_suite(
        _suite(
            BenchSpec("boom", "selftest.boom", {"message": "x"}),
            BenchSpec("zero", "selftest.poisoned", {"tasks_failed": 0}),
        ),
        workers=1,
    )
    # the failed task already flips result.ok; its (absent) payload must
    # not double-count, and a clean tasks_failed=0 contributes nothing
    assert not result.ok
    assert result.payload_failures() == 0


def test_cli_exits_nonzero_on_poisoned_payload(monkeypatch, capsys):
    monkeypatch.setitem(
        suites.SUITE_BUILDERS,
        "poisoned",
        lambda smoke=False: _suite(
            BenchSpec("poisoned/x", "selftest.poisoned", {"tasks_failed": 2})
        ),
    )
    assert cli.main(["poisoned", "-q"]) == 1
    err = capsys.readouterr().err
    assert "2 work unit(s) failed" in err
    assert "tasks_failed" in err


def test_cli_exits_zero_when_payloads_are_clean(monkeypatch):
    monkeypatch.setitem(
        suites.SUITE_BUILDERS,
        "clean",
        lambda smoke=False: _suite(
            BenchSpec("clean/x", "selftest.sleep", {"seconds": 0.001})
        ),
    )
    assert cli.main(["clean", "-q"]) == 0
