"""Shared Galaxy fixtures: an app with toy tools and zero job overheads."""

import pytest

from repro.galaxy import GalaxyApp, Tool, ToolOutput, ToolParameter
from repro.simcore import SimContext


def uppercase_tool():
    """Toy tool: uppercases its input text."""

    def execute(run):
        data = run.input(0).read()
        run.output("output").write(data.upper())
        run.log("uppercased %d bytes" % len(data))

    return Tool(
        id="upper1",
        name="Uppercase",
        parameters=[ToolParameter(name="input", type="data")],
        outputs=[ToolOutput(name="output", ext="txt", label="Uppercased text")],
        execute=execute,
        work_model=lambda params, sizes: (10.0, 2.0),
    )


def concat_tool():
    """Toy tool with two data inputs."""

    def execute(run):
        merged = b"\n".join(h.read() for h in run.inputs)
        run.output("output").write(merged)

    return Tool(
        id="cat1",
        name="Concatenate",
        parameters=[
            ToolParameter(name="first", type="data"),
            ToolParameter(name="second", type="data"),
        ],
        outputs=[ToolOutput(name="output", ext="txt")],
        execute=execute,
        work_model=lambda params, sizes: (5.0, 1.0),
    )


def failing_tool():
    def execute(run):
        raise RuntimeError("segmentation fault (core dumped)")

    return Tool(
        id="crash1",
        name="Crasher",
        parameters=[ToolParameter(name="input", type="data")],
        outputs=[ToolOutput(name="output", ext="txt")],
        execute=execute,
    )


def sleep_tool(cpu_work=100.0):
    """Pure compute tool parameterised by work; writes a marker output."""

    def execute(run):
        run.output("output").write(b"done")

    return Tool(
        id=f"sleep{int(cpu_work)}",
        name="Sleeper",
        parameters=[ToolParameter(name="input", type="data")],
        outputs=[ToolOutput(name="output", ext="txt")],
        execute=execute,
        work_model=lambda params, sizes: (cpu_work, 0.0),
    )


@pytest.fixture
def app():
    ctx = SimContext(seed=5)
    app = GalaxyApp(ctx, job_overheads=(0.0, 0.0))
    app.install_tool(uppercase_tool(), section="Text")
    app.install_tool(concat_tool(), section="Text")
    app.install_tool(failing_tool(), section="Debug")
    app.create_user("boliu", "boliu@uchicago.edu")
    return app


@pytest.fixture
def history(app):
    return app.create_history("boliu", "Test history")
