"""Dataset deletion and purging (quota recovery)."""

import pytest

from repro.galaxy import DatasetState, GalaxyError


def test_delete_hides_but_keeps_bytes(app, history):
    ds = app.upload_data(history, "keep.txt", data=b"still here", ext="txt")
    app.delete_dataset(ds)
    assert ds.deleted
    assert app.fs.exists(ds.file_path)
    assert ds not in history.active()
    assert app.user_disk_usage("boliu") == 0  # deleted data is not counted


def test_purge_frees_disk(app, history):
    ds = app.upload_data(history, "gone.txt", data=b"bye", ext="txt")
    path = ds.file_path
    app.delete_dataset(ds, purge=True)
    assert not app.fs.exists(path)
    assert ds.size == 0
    assert ds.state == DatasetState.DISCARDED
    with pytest.raises(GalaxyError):
        app.download_dataset(ds)


def test_purge_recovers_quota(app, history):
    app.set_user_quota("boliu", 1000)
    big = app.upload_data(history, "big", size=900)
    small_in = app.upload_data(history, "in", data=b"ok", ext="txt")
    app.upload_data(history, "more", size=200)  # now over quota
    with pytest.raises(GalaxyError, match="over quota"):
        app.run_tool("boliu", history, "upper1", inputs=[small_in])
    app.delete_dataset(big, purge=True)
    job = app.run_tool("boliu", history, "upper1", inputs=[small_in])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state.value == "ok"
