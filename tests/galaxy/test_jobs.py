"""Job lifecycle, runners, history panel integration."""

import pytest

from repro import calibration
from repro.cluster import CondorPool, MachineAd
from repro.galaxy import (
    CondorJobRunner,
    DatasetState,
    GalaxyApp,
    JobError,
    JobState,
    LocalJobRunner,
    Tool,
    ToolOutput,
    ToolParameter,
)
from repro.simcore import SimContext

from .conftest import sleep_tool


def test_tool_run_produces_ok_dataset(app, history):
    ds = app.upload_data(history, "notes.txt", data=b"hello galaxy", ext="txt")
    job = app.run_tool("boliu", history, "upper1", inputs=[ds])
    assert job.state == JobState.QUEUED
    out = job.outputs["output"]
    assert out.state == DatasetState.QUEUED
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK
    assert out.state == DatasetState.OK
    assert app.fs.read(out.file_path) == b"HELLO GALAXY"
    assert out.peek == "HELLO GALAXY"
    assert "uppercased" in job.stdout


def test_job_duration_includes_overheads():
    ctx = SimContext(seed=1)
    app = GalaxyApp(ctx)  # default calibrated overheads
    app.install_tool(sleep_tool(cpu_work=100.0))
    app.create_user("u")
    h = app.create_history("u")
    ds = app.upload_data(h, "in", data=b"x")
    job = app.run_tool("u", h, "sleep100", inputs=[ds])
    ctx.sim.run(until=app.jobs.when_done(job))
    assert job.wall_s == pytest.approx(
        calibration.JOB_FIXED_OVERHEAD_S + 100.0, abs=1.0
    )


def test_failing_tool_marks_error(app, history):
    ds = app.upload_data(history, "in", data=b"x")
    job = app.run_tool("boliu", history, "crash1", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.ERROR
    assert "segmentation fault" in job.stderr
    out = job.outputs["output"]
    assert out.state == DatasetState.ERROR
    assert "segmentation fault" in out.info
    # the history panel shows the error
    panel = app.history_panel(history)
    assert any("[error]" in line for line in panel)


def test_tool_writing_no_output_is_error(app, history):
    def execute(run):
        pass  # forgets to write

    tool = Tool(
        id="lazy",
        name="Lazy",
        parameters=[ToolParameter(name="input", type="data")],
        outputs=[ToolOutput(name="output", ext="txt")],
        execute=execute,
    )
    app.install_tool(tool)
    ds = app.upload_data(history, "in", data=b"x")
    job = app.run_tool("boliu", history, "lazy", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.ERROR
    assert "no data" in job.stderr


def test_non_ok_input_rejected(app, history):
    ds = app.upload_data(history, "in", data=b"x")
    ds.state = DatasetState.ERROR
    with pytest.raises(JobError, match="not ok"):
        app.run_tool("boliu", history, "upper1", inputs=[ds])


def test_local_runner_serialises_on_cores():
    ctx = SimContext(seed=1)
    app = GalaxyApp(
        ctx, runner=LocalJobRunner(ctx, cores=1), job_overheads=(0.0, 0.0)
    )
    app.install_tool(sleep_tool(cpu_work=100.0))
    app.create_user("u")
    h = app.create_history("u")
    d1 = app.upload_data(h, "a", data=b"x")
    d2 = app.upload_data(h, "b", data=b"x")
    j1 = app.run_tool("u", h, "sleep100", inputs=[d1])
    j2 = app.run_tool("u", h, "sleep100", inputs=[d2])
    ctx.sim.run(until=ctx.sim.all_of([app.jobs.when_done(j1), app.jobs.when_done(j2)]))
    assert ctx.now == pytest.approx(200.0, abs=1.0)


def test_condor_runner_dispatches_to_pool_and_records_machine():
    ctx = SimContext(seed=1)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    pool.add_machine(MachineAd(name="worker-1", cores=2, memory_gb=4.0, cpu_factor=2.0))
    app = GalaxyApp(ctx, runner=CondorJobRunner(ctx, pool), job_overheads=(0.0, 0.0))
    app.install_tool(sleep_tool(cpu_work=100.0))
    app.create_user("u")
    h = app.create_history("u")
    ds = app.upload_data(h, "a", data=b"x")
    job = app.run_tool("u", h, "sleep100", inputs=[ds])
    ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK
    assert job.machine == "worker-1"
    # ran at 2x speed
    assert ctx.now == pytest.approx(50.0, abs=1.0)


def test_condor_parallelism_across_workers():
    ctx = SimContext(seed=1)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    for i in range(4):
        pool.add_machine(MachineAd(name=f"w{i}", cores=1, memory_gb=4.0, cpu_factor=1.0))
    app = GalaxyApp(ctx, runner=CondorJobRunner(ctx, pool), job_overheads=(0.0, 0.0))
    app.install_tool(sleep_tool(cpu_work=100.0))
    app.create_user("u")
    h = app.create_history("u")
    jobs = []
    for i in range(4):
        ds = app.upload_data(h, f"d{i}", data=b"x")
        jobs.append(app.run_tool("u", h, "sleep100", inputs=[ds]))
    ctx.sim.run(until=ctx.sim.all_of([app.jobs.when_done(j) for j in jobs]))
    assert ctx.now == pytest.approx(100.0, abs=1.0)  # all parallel
    assert {j.machine for j in jobs} == {"w0", "w1", "w2", "w3"}


def test_tool_requirements_constrain_condor_match():
    ctx = SimContext(seed=1)
    pool = CondorPool(ctx, negotiation_interval_s=5.0)
    from repro.cloud import MockEC2
    from repro.cluster import ClusterNode

    ec2 = MockEC2(ctx, boot_jitter=0.0)
    (i1,) = ec2.run_instances("ami-b12ee0d8", "m1.small")
    (i2,) = ec2.run_instances("ami-b12ee0d8", "c1.medium")
    ctx.sim.run()
    plain = ClusterNode.create("plain", i1)
    rnode = ClusterNode.create("r-node", i2)
    rnode.chef.packages.add("R")
    pool.add_node(plain)
    pool.add_node(rnode)

    app = GalaxyApp(ctx, runner=CondorJobRunner(ctx, pool), job_overheads=(0.0, 0.0))
    tool = sleep_tool(cpu_work=10.0)
    tool.requirements = ("R",)
    app.install_tool(tool)
    app.create_user("u")
    h = app.create_history("u")
    ds = app.upload_data(h, "a", data=b"x")
    job = app.run_tool("u", h, "sleep10", inputs=[ds])
    ctx.sim.run(until=app.jobs.when_done(job))
    assert job.machine == "r-node"


def test_dataset_hids_are_sequential(app, history):
    d1 = app.upload_data(history, "a", data=b"1")
    d2 = app.upload_data(history, "b", data=b"2")
    job = app.run_tool("boliu", history, "upper1", inputs=[d1])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    hids = [d.hid for d in history.datasets]
    assert hids == [1, 2, 3]
    assert history.by_hid(2) is d2
    with pytest.raises(KeyError):
        history.by_hid(99)


def test_job_listener_invoked(app, history):
    seen = []
    app.jobs.listeners.append(lambda j: seen.append((j.id, j.state.value)))
    ds = app.upload_data(history, "a", data=b"x")
    job = app.run_tool("boliu", history, "upper1", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert (job.id, "ok") in seen
