"""History sharing/import, dataset download, quotas, workflow JSON export."""

import pytest

from repro.galaxy import DatasetState, GalaxyError, Workflow, WorkflowError

from .conftest import uppercase_tool  # noqa: F401 (fixtures in conftest)


# -- history sharing --------------------------------------------------------------


def test_share_and_import_history(app, history):
    ds = app.upload_data(history, "data.txt", data=b"shared payload", ext="txt")
    app.create_user("collab")
    with pytest.raises(GalaxyError, match="no access"):
        app.import_history(history, as_user="collab")
    app.share_history(history, owner="boliu", with_user="collab")
    copy = app.import_history(history, as_user="collab")
    assert copy.user == "collab"
    assert copy.name.startswith("imported:")
    assert len(copy.datasets) == 1
    imported = copy.datasets[0]
    assert imported.id != ds.id                 # a new history item
    assert imported.file_path == ds.file_path   # referencing the same payload
    assert app.download_dataset(imported) == b"shared payload"


def test_published_history_importable_by_anyone(app, history):
    app.upload_data(history, "x", data=b"x")
    history.published = True
    app.create_user("stranger")
    copy = app.import_history(history, as_user="stranger", name="mine now")
    assert copy.name == "mine now"


def test_only_owner_shares(app, history):
    app.create_user("collab")
    with pytest.raises(GalaxyError, match="owner"):
        app.share_history(history, owner="collab", with_user="collab")


def test_share_with_unknown_user(app, history):
    with pytest.raises(GalaxyError, match="no such user"):
        app.share_history(history, owner="boliu", with_user="ghost")


# -- download ("Save" button) -------------------------------------------------------


def test_download_dataset(app, history):
    ds = app.upload_data(history, "t.txt", data=b"save me", ext="txt")
    assert app.download_dataset(ds) == b"save me"


def test_download_errored_dataset_refused(app, history):
    ds = app.upload_data(history, "t.txt", data=b"x", ext="txt")
    ds.state = DatasetState.ERROR
    with pytest.raises(GalaxyError):
        app.download_dataset(ds)


# -- quotas ---------------------------------------------------------------------------


def test_disk_usage_accumulates(app, history):
    app.upload_data(history, "a", size=1000)
    app.upload_data(history, "b", size=500)
    assert app.user_disk_usage("boliu") == 1500
    history.datasets[0].deleted = True
    assert app.user_disk_usage("boliu") == 500


def test_over_quota_blocks_new_jobs(app, history):
    app.set_user_quota("boliu", 100)
    ds = app.upload_data(history, "big", size=1000, ext="txt")
    with pytest.raises(GalaxyError, match="over quota"):
        app.run_tool("boliu", history, "upper1", inputs=[ds])
    # freeing space unblocks
    ds.deleted = True
    small = app.upload_data(history, "small", data=b"ok", ext="txt")
    job = app.run_tool("boliu", history, "upper1", inputs=[small])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state.value == "ok"


def test_quota_none_is_unlimited(app, history):
    app.upload_data(history, "big", size=10**12)
    ds = app.upload_data(history, "in", data=b"x", ext="txt")
    job = app.run_tool("boliu", history, "upper1", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state.value == "ok"


# -- workflow JSON export/import --------------------------------------------------------


def build_wf():
    wf = Workflow(name="exported", annotation="a pipeline")
    inp = wf.add_input("in")
    s1 = wf.add_step("upper1", connect={"input": inp})
    wf.add_step("cat1", params={}, connect={"first": inp, "second": (s1, "output")})
    return wf


def test_workflow_json_roundtrip(app):
    wf = build_wf()
    text = wf.to_json()
    back = Workflow.from_json(text)
    assert back.name == wf.name
    assert back.annotation == "a pipeline"
    assert set(back.steps) == set(wf.steps)
    for sid, step in wf.steps.items():
        assert back.steps[sid].tool_id == step.tool_id
        assert back.steps[sid].connections == step.connections
    back.validate(app.toolbox)  # still a valid workflow


def test_workflow_roundtrip_runs_identically(app):
    history = app.create_history("boliu", "roundtrip")
    wf = build_wf()
    back = Workflow.from_json(wf.to_json())
    ds = app.upload_data(history, "x", data=b"ab", ext="txt")
    inp_id = back.input_steps()[0].id
    inv = app.workflows.invoke(back, history, user="boliu", inputs={inp_id: ds})
    app.ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "ok"
    final = max(s.id for s in back.tool_steps())
    assert app.fs.read(inv.jobs[final].outputs["output"].file_path) == b"ab\nAB"


def test_workflow_from_bad_json():
    with pytest.raises(WorkflowError, match="bad workflow JSON"):
        Workflow.from_json("{not json")
    with pytest.raises(WorkflowError, match="not a workflow export"):
        Workflow.from_json('{"format": "other"}')
