"""The REST-style Galaxy API client."""

import pytest

from repro.galaxy import GalaxyAPIError, GalaxyClient, Workflow


@pytest.fixture
def client(app):
    return GalaxyClient(app, app.user("boliu").api_key)


def test_bad_api_key(app):
    with pytest.raises(GalaxyAPIError) as err:
        GalaxyClient(app, "key-deadbeef")
    assert err.value.status == 401


def test_history_lifecycle(client, app):
    hid = client.create_history("api history")
    assert {"id": hid, "name": "api history", "size": 0} in client.list_histories()
    ds_id = client.upload(hid, "notes.txt", data=b"api payload", ext="txt")
    doc = client.show_history(hid)
    assert doc["datasets"][0]["id"] == ds_id
    assert doc["datasets"][0]["state"] == "ok"
    assert client.download(hid, ds_id) == b"api payload"


def test_history_access_control(client, app):
    app.create_user("other")
    other_history = app.create_history("other", "private")
    with pytest.raises(GalaxyAPIError) as err:
        client.show_history(other_history.id)
    assert err.value.status == 403
    with pytest.raises(GalaxyAPIError) as err:
        client.show_history(999)
    assert err.value.status == 404
    # shared history becomes visible but not writable
    app.share_history(other_history, owner="other", with_user="boliu")
    assert client.show_history(other_history.id)["name"] == "private"
    with pytest.raises(GalaxyAPIError) as err:
        client.upload(other_history.id, "x", data=b"y")
    assert err.value.status == 403


def test_run_tool_and_poll_job(client, app):
    hid = client.create_history("tool run")
    ds_id = client.upload(hid, "in.txt", data=b"abc", ext="txt")
    job_doc = client.run_tool(hid, "upper1", input_ids=[ds_id])
    assert job_doc.state in ("new", "queued")
    app.ctx.sim.run(until=client.when_job_done(job_doc.id))
    final = client.show_job(job_doc.id)
    assert final.state == "ok"
    out_id = final.outputs["output"]
    assert client.download(hid, out_id) == b"ABC"


def test_run_unknown_tool_is_400(client):
    hid = client.create_history("x")
    with pytest.raises(GalaxyAPIError) as err:
        client.run_tool(hid, "no_such_tool")
    assert err.value.status == 400


def test_job_of_other_user_is_403(client, app):
    app.create_user("other")
    h = app.create_history("other", "their history")
    ds = app.upload_data(h, "in", data=b"x", ext="txt")
    job = app.run_tool("other", h, "upper1", inputs=[ds])
    with pytest.raises(GalaxyAPIError) as err:
        client.show_job(job.id)
    assert err.value.status == 403


def test_list_tools(client):
    tools = client.list_tools()
    assert any(t["id"] == "upper1" for t in tools)


def test_workflow_import_export_invoke(client, app):
    wf = Workflow(name="api-wf")
    inp = wf.add_input()
    wf.add_step("upper1", connect={"input": inp})
    name = client.import_workflow(wf.to_json())
    assert name == "api-wf"
    exported = client.export_workflow("api-wf")
    assert '"api-wf"' in exported
    hid = client.create_history("wf run")
    ds_id = client.upload(hid, "x.txt", data=b"run me", ext="txt")
    result = client.invoke_workflow("api-wf", hid, {inp.id: ds_id})
    inv = result["invocation"]
    app.ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "ok"
    with pytest.raises(GalaxyAPIError) as err:
        client.export_workflow("nope")
    assert err.value.status == 404


def test_import_invalid_workflow_is_400(client):
    with pytest.raises(GalaxyAPIError) as err:
        client.import_workflow("{bad json")
    assert err.value.status == 400
