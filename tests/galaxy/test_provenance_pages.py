"""Provenance capture/rerun and pages/sharing."""

import pytest

from repro.galaxy import (
    GalaxyError,
    JobState,
    ProvenanceError,
    SharingError,
    Workflow,
)


def run_upper(app, history, data=b"abc"):
    ds = app.upload_data(history, "in.txt", data=data, ext="txt")
    job = app.run_tool("boliu", history, "upper1", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    return ds, job


def test_job_record_captured(app, history):
    ds, job = run_upper(app, history)
    rec = app.provenance.record_for_job(job.id)
    assert rec.tool_id == "upper1"
    assert rec.input_ids == (ds.id,)
    assert rec.state == "ok"
    assert rec.output_ids == (job.outputs["output"].id,)
    assert rec.input_checksums[0] != "?"


def test_creating_job_and_lineage(app, history):
    ds, job1 = run_upper(app, history)
    out1 = job1.outputs["output"]
    job2 = app.run_tool("boliu", history, "upper1", inputs=[out1])
    app.ctx.sim.run(until=app.jobs.when_done(job2))
    out2 = job2.outputs["output"]
    rec = app.provenance.creating_job(out2)
    assert rec.job_id == job2.id
    chain = app.provenance.lineage(out2, history)
    assert [r.job_id for r in chain] == [job1.id, job2.id]
    assert app.provenance.creating_job(ds) is None  # uploaded, not computed


def test_export_history(app, history):
    ds, job = run_upper(app, history)
    export = app.provenance.export_history(history)
    assert len(export) == 2
    created = [e for e in export if e["created_by"] is not None]
    assert len(created) == 1
    assert created[0]["created_by"]["tool_id"] == "upper1"
    assert created[0]["created_by"]["inputs"] == [ds.id]


def test_rerun_reproduces_output(app, history):
    ds, job = run_upper(app, history, data=b"reproduce me")
    rec = app.provenance.record_for_job(job.id)
    rerun_job = app.provenance.rerun(rec, history, app.toolbox)
    app.ctx.sim.run(until=app.jobs.when_done(rerun_job))
    assert rerun_job.state == JobState.OK
    original = app.fs.read(job.outputs["output"].file_path)
    repeated = app.fs.read(rerun_job.outputs["output"].file_path)
    assert original == repeated == b"REPRODUCE ME"


def test_rerun_fails_if_input_deleted(app, history):
    ds, job = run_upper(app, history)
    rec = app.provenance.record_for_job(job.id)
    ds.deleted = True
    with pytest.raises(ProvenanceError, match="unavailable"):
        app.provenance.rerun(rec, history, app.toolbox)


def test_failed_jobs_are_also_recorded(app, history):
    ds = app.upload_data(history, "in", data=b"x")
    job = app.run_tool("boliu", history, "crash1", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    rec = app.provenance.record_for_job(job.id)
    assert rec.state == "error"


# -- pages ---------------------------------------------------------------------


def test_create_embed_and_publish_page(app, history):
    ds, job = run_upper(app, history)
    app.create_user("reader")
    page = app.pages.create("CVRG analysis", owner="boliu")
    page.add_text("Differential expression of four CEL files.")
    page.embed(history, caption="full analysis")
    page.embed(job.outputs["output"])
    wf = Workflow(name="shared-wf")
    inp = wf.add_input()
    wf.add_step("upper1", connect={"input": inp})
    page.embed(wf)
    # private: the reader cannot see it yet
    with pytest.raises(SharingError, match="may not view"):
        app.pages.get("cvrg-analysis", as_user="reader")
    link = app.pages.publish("cvrg-analysis", owner="boliu")
    assert link == "/u/boliu/p/cvrg-analysis"
    got = app.pages.get("cvrg-analysis", as_user="reader")
    assert got.embedded("history") == [history]
    # the reader can clone the embedded workflow and extend it
    cloned = got.embedded("workflow")[0].clone()
    cloned.validate(app.toolbox)


def test_share_with_specific_user(app, history):
    app.create_user("collab")
    page = app.pages.create("Draft", owner="boliu")
    app.pages.share("Draft".lower(), owner="boliu", with_user="collab")
    got = app.pages.get("draft", as_user="collab")
    assert got.title == "Draft"
    with pytest.raises(SharingError):
        app.pages.get("draft", as_user="stranger")


def test_only_owner_can_share_or_publish(app):
    app.pages.create("P", owner="boliu", slug="p")
    with pytest.raises(SharingError, match="owner"):
        app.pages.share("p", owner="mallory", with_user="mallory")
    with pytest.raises(SharingError, match="owner"):
        app.pages.publish("p", owner="mallory")


def test_duplicate_slug_rejected(app):
    app.pages.create("One", owner="boliu", slug="s")
    with pytest.raises(SharingError, match="taken"):
        app.pages.create("Two", owner="boliu", slug="s")


def test_published_listing(app):
    app.pages.create("A", owner="boliu", slug="a")
    app.pages.create("B", owner="boliu", slug="b")
    app.pages.publish("a", owner="boliu")
    assert [p.slug for p in app.pages.published_pages()] == ["a"]


# -- app-level odds and ends ---------------------------------------------------


def test_duplicate_user_rejected(app):
    with pytest.raises(GalaxyError):
        app.create_user("boliu")


def test_link_globus_account(app):
    app.link_globus_account("boliu", "boliu")
    assert app.user("boliu").globus_username == "boliu"


def test_history_panel_rendering(app, history):
    ds, job = run_upper(app, history)
    panel = app.history_panel(history)
    assert panel[0].startswith("1: in.txt [ok]")
    assert "[ok]" in panel[1]
