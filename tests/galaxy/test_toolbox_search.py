"""Tool-panel search."""

from repro.crdata import install_crdata_tools
from repro.galaxy import Toolbox


def test_search_by_name_and_description():
    box = Toolbox()
    install_crdata_tools(box)
    hits = box.search("differential")
    ids = {t.id for t in hits}
    assert "crdata_affyDifferentialExpression" in ids
    assert "crdata_sequenceDifferentialExperssion" in ids
    assert all("differential" in (t.id + t.name + t.description).lower() for t in hits)


def test_search_case_insensitive_and_empty():
    box = Toolbox()
    install_crdata_tools(box)
    assert box.search("KAPLAN")
    assert box.search("zzzznope") == []
    # empty query matches everything
    assert len(box.search("")) == len(box)
