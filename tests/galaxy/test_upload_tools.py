"""Galaxy's stock HTTP/FTP upload tools on a deployed instance."""

import pytest

from repro.calibration import GB, MB
from repro.core import CloudTestbed, usecase_topology
from repro.galaxy import JobState, UPLOAD_FTP_TOOL_ID, UPLOAD_HTTP_TOOL_ID
from repro.provision import GlobusProvision


@pytest.fixture(scope="module")
def world():
    bed = CloudTestbed(seed=30)
    gp = GlobusProvision(bed)
    gpi = gp.create(usecase_topology("c1.medium", cluster_nodes=1))

    def scenario():
        yield from gp.start(gpi.id)

    bed.ctx.sim.run(until=bed.ctx.sim.process(scenario()))
    return bed, gpi.deployment.galaxy


def run_job(bed, app, job):
    bed.ctx.sim.run(until=app.jobs.when_done(job))
    return job


def test_http_upload_small_file(world):
    bed, app = world
    bed.laptop_fs.write("/home/boliu/notes.txt", data=b"field notes")
    history = app.create_history("boliu", "http upload")
    job = run_job(bed, app, app.run_tool(
        "boliu", history, UPLOAD_HTTP_TOOL_ID,
        params={"path": "/home/boliu/notes.txt"},
    ))
    assert job.state == JobState.OK
    ds = job.outputs["output"]
    assert ds.name == "notes.txt"
    assert app.fs.read(ds.file_path) == b"field notes"
    assert "http upload" in ds.info


def test_http_upload_rejects_over_2gb(world):
    bed, app = world
    bed.laptop_fs.write("/home/boliu/huge.bin", size=2 * GB + 1)
    history = app.create_history("boliu", "too big")
    job = run_job(bed, app, app.run_tool(
        "boliu", history, UPLOAD_HTTP_TOOL_ID,
        params={"path": "/home/boliu/huge.bin"},
    ))
    assert job.state == JobState.ERROR
    assert "2 GB" in job.stderr
    assert "Globus Transfer" in job.stderr  # points the user at the fix


def test_ftp_upload_beats_http_on_medium_files(world):
    bed, app = world
    bed.laptop_fs.write("/home/boliu/mid.bin", size=20 * MB)
    history = app.create_history("boliu", "races")
    ftp_job = run_job(bed, app, app.run_tool(
        "boliu", history, UPLOAD_FTP_TOOL_ID, params={"path": "/home/boliu/mid.bin"},
    ))
    http_job = run_job(bed, app, app.run_tool(
        "boliu", history, UPLOAD_HTTP_TOOL_ID, params={"path": "/home/boliu/mid.bin"},
    ))
    assert ftp_job.state == http_job.state == JobState.OK
    assert ftp_job.wall_s < http_job.wall_s / 5


def test_ftp_upload_disabled_by_config(world):
    bed, app = world
    app.config.ftp_upload_enabled = False
    try:
        bed.laptop_fs.write("/home/boliu/x.txt", data=b"x")
        history = app.create_history("boliu", "no ftp")
        job = run_job(bed, app, app.run_tool(
            "boliu", history, UPLOAD_FTP_TOOL_ID, params={"path": "/home/boliu/x.txt"},
        ))
        assert job.state == JobState.ERROR
        assert "disabled" in job.stderr
    finally:
        app.config.ftp_upload_enabled = True


def test_upload_missing_local_file(world):
    bed, app = world
    history = app.create_history("boliu", "missing")
    job = run_job(bed, app, app.run_tool(
        "boliu", history, UPLOAD_FTP_TOOL_ID, params={"path": "/home/boliu/ghost"},
    ))
    assert job.state == JobState.ERROR
