"""Tool definitions, parameter validation, toolbox."""

import pytest

from repro.galaxy import Tool, Toolbox, ToolError, ToolOutput, ToolParameter


def test_parameter_coercion():
    assert ToolParameter(name="n", type="integer").validate("42") == 42
    assert ToolParameter(name="x", type="float").validate("1.5") == 1.5
    assert ToolParameter(name="b", type="boolean").validate("yes") is True
    assert ToolParameter(name="b", type="boolean").validate("no") is False
    assert ToolParameter(name="t", type="text").validate(7) == "7"


def test_required_parameter_missing():
    with pytest.raises(ToolError, match="required"):
        ToolParameter(name="n", type="integer").validate(None)


def test_optional_and_default():
    assert ToolParameter(name="n", type="integer", optional=True).validate(None) is None
    assert ToolParameter(name="n", type="integer", default=3).validate(None) == 3


def test_select_options():
    p = ToolParameter(name="mode", type="select", options=("fast", "slow"))
    assert p.validate("fast") == "fast"
    with pytest.raises(ToolError, match="not in"):
        p.validate("medium")


def test_bad_coercion_reports_parameter():
    with pytest.raises(ToolError, match="'n'"):
        ToolParameter(name="n", type="integer").validate("abc")


def test_unknown_type():
    with pytest.raises(ToolError, match="unknown type"):
        ToolParameter(name="z", type="color").validate("red")


def test_output_extension_checked():
    with pytest.raises(ToolError, match="unknown extension"):
        ToolOutput(name="o", ext="exe")


def test_tool_from_config():
    tool = Tool.from_config(
        {
            "id": "t1",
            "name": "Tool One",
            "version": "2.1",
            "parameters": [
                {"name": "input", "type": "data"},
                {"name": "cutoff", "type": "float", "default": 0.05},
            ],
            "outputs": [{"name": "out", "ext": "tabular"}],
            "requirements": ["R", "bioconductor"],
        },
        execute=lambda run: None,
    )
    assert tool.version == "2.1"
    assert tool.param("cutoff").default == 0.05
    assert tool.requirements == ("R", "bioconductor")
    assert [p.name for p in tool.data_params()] == ["input"]


def test_tool_config_missing_id():
    with pytest.raises(ToolError, match="missing"):
        Tool.from_config({"name": "x"})


def test_duplicate_parameters_rejected():
    with pytest.raises(ToolError, match="duplicate parameter"):
        Tool(
            id="t",
            name="t",
            parameters=[ToolParameter(name="a"), ToolParameter(name="a")],
        )


def test_validate_params_rejects_unknown():
    tool = Tool(id="t", name="t", parameters=[ToolParameter(name="a", default="x")])
    with pytest.raises(ToolError, match="unknown parameters"):
        tool.validate_params({"zzz": 1})
    assert tool.validate_params({}) == {"a": "x"}


def test_validate_params_skips_data_params():
    tool = Tool(
        id="t",
        name="t",
        parameters=[ToolParameter(name="input", type="data"), ToolParameter(name="k", default=1, type="integer")],
    )
    out = tool.validate_params({})
    assert out == {"k": 1}


def test_toolbox_sections_and_lookup():
    box = Toolbox()
    t1 = Tool(id="a", name="A", execute=lambda r: None)
    t2 = Tool(id="b", name="B", execute=lambda r: None)
    box.register(t1, section="NGS")
    box.register(t2, section="Statistics")
    assert box.get("a") is t1
    assert "b" in box
    assert len(box) == 2
    sections = box.sections()
    assert [t.id for t in sections["NGS"]] == ["a"]
    with pytest.raises(ToolError, match="no such tool"):
        box.get("zzz")
    with pytest.raises(ToolError, match="already registered"):
        box.register(t1)
