"""Workflow DAG validation and execution."""

import pytest

from repro.galaxy import Connection, JobState, Workflow, WorkflowError
from repro.simcore import SimContext


def build_linear_workflow(app):
    wf = Workflow(name="linear")
    inp = wf.add_input("text in")
    s1 = wf.add_step("upper1", connect={"input": inp})
    wf.add_step("upper1", connect={"input": (s1, "output")})
    return wf, inp


def test_validate_ok(app):
    wf, _ = build_linear_workflow(app)
    wf.validate(app.toolbox)  # no raise


def test_validate_rejects_cycle(app):
    wf = Workflow(name="cyclic")
    s1 = wf.add_step("upper1", connect={})
    s2 = wf.add_step("upper1", connect={})
    wf.steps[s1.id].connections["input"] = Connection(s2.id, "output")
    wf.steps[s2.id].connections["input"] = Connection(s1.id, "output")
    with pytest.raises(WorkflowError, match="cycle"):
        wf.validate(app.toolbox)


def test_validate_rejects_unconnected_data_input(app):
    wf = Workflow(name="dangling")
    wf.add_step("upper1")
    with pytest.raises(WorkflowError, match="unconnected"):
        wf.validate(app.toolbox)


def test_validate_rejects_unknown_output_name(app):
    wf = Workflow(name="bad-output")
    inp = wf.add_input()
    s1 = wf.add_step("upper1", connect={"input": inp})
    wf.add_step("upper1", connect={"input": (s1, "no_such_output")})
    with pytest.raises(WorkflowError, match="no output"):
        wf.validate(app.toolbox)


def test_validate_rejects_non_data_connection(app):
    wf = Workflow(name="bad-param")
    inp = wf.add_input()
    wf.add_step("upper1", connect={"input": inp, "bogus": inp})
    with pytest.raises(WorkflowError, match="not a data parameter"):
        wf.validate(app.toolbox)


def test_linear_workflow_runs_end_to_end(app):
    history = app.create_history("boliu", "wf run")
    wf, inp = build_linear_workflow(app)
    app.save_workflow(wf)
    ds = app.upload_data(history, "input.txt", data=b"abc", ext="txt")
    inv = app.run_workflow("boliu", "linear", history, inputs={inp.id: ds})
    app.ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "ok"
    final_step = max(s.id for s in wf.tool_steps())
    final = inv.jobs[final_step].outputs["output"]
    assert app.fs.read(final.file_path) == b"ABC"
    # history now holds: input + 2 intermediates
    assert len(history.datasets) == 3


def test_diamond_workflow_joins_branches(app):
    history = app.create_history("boliu", "diamond")
    wf = Workflow(name="diamond")
    inp = wf.add_input()
    left = wf.add_step("upper1", connect={"input": inp})
    right = wf.add_step("upper1", connect={"input": inp})
    join = wf.add_step(
        "cat1",
        connect={"first": (left, "output"), "second": (right, "output")},
    )
    ds = app.upload_data(history, "x", data=b"ab", ext="txt")
    inv = app.workflows.invoke(wf, history, user="boliu", inputs={inp.id: ds})
    app.ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "ok"
    out = inv.jobs[join.id].outputs["output"]
    assert app.fs.read(out.file_path) == b"AB\nAB"


def test_workflow_missing_inputs_rejected(app):
    history = app.create_history("boliu")
    wf, inp = build_linear_workflow(app)
    with pytest.raises(WorkflowError, match="inputs must be supplied"):
        app.workflows.invoke(wf, history, user="boliu", inputs={})


def test_workflow_error_propagates_and_stops_downstream(app):
    history = app.create_history("boliu")
    wf = Workflow(name="fails")
    inp = wf.add_input()
    bad = wf.add_step("crash1", connect={"input": inp})
    down = wf.add_step("upper1", connect={"input": (bad, "output")})
    ds = app.upload_data(history, "x", data=b"ab")
    inv = app.workflows.invoke(wf, history, user="boliu", inputs={inp.id: ds})
    app.ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "error"
    assert inv.jobs[bad.id].state == JobState.ERROR
    assert down.id not in inv.jobs  # downstream never submitted


def test_unknown_saved_workflow(app):
    history = app.create_history("boliu")
    from repro.galaxy import GalaxyError

    with pytest.raises(GalaxyError, match="no saved workflow"):
        app.run_workflow("boliu", "missing", history, inputs={})


def test_clone_workflow_is_independent(app):
    wf, _ = build_linear_workflow(app)
    wf.published = True
    copy = wf.clone()
    assert copy.name == "Copy of linear"
    assert not copy.published
    copy.add_input("extra")
    assert len(copy.steps) == len(wf.steps) + 1


def test_workflow_steps_run_in_parallel_on_wide_pool():
    """Two independent branches overlap in time."""
    from repro.cluster import CondorPool, MachineAd
    from repro.galaxy import CondorJobRunner, GalaxyApp

    from .conftest import sleep_tool, uppercase_tool

    ctx = SimContext(seed=2)
    pool = CondorPool(ctx, negotiation_interval_s=2.0)
    for i in range(2):
        pool.add_machine(MachineAd(name=f"w{i}", cores=1, memory_gb=4.0, cpu_factor=1.0))
    app = GalaxyApp(ctx, runner=CondorJobRunner(ctx, pool), job_overheads=(0.0, 0.0))
    app.install_tool(sleep_tool(cpu_work=100.0))
    app.create_user("u")
    h = app.create_history("u")
    wf = Workflow(name="wide")
    inp = wf.add_input()
    wf.add_step("sleep100", connect={"input": inp})
    wf.add_step("sleep100", connect={"input": inp})
    ds = app.upload_data(h, "x", data=b"1")
    inv = app.workflows.invoke(wf, h, user="u", inputs={inp.id: ds})
    ctx.sim.run(until=app.workflows.when_done(inv))
    assert inv.state == "ok"
    assert ctx.now < 150.0  # parallel, not 200 serial
