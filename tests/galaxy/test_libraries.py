"""Data libraries: curated shared datasets (Sec. II-1 warehouses)."""

import pytest

from repro.galaxy import JobState, LibraryError


@pytest.fixture
def library(app):
    lib = app.libraries.create("CVRG reference data", description="curated")
    app.libraries.add_item(
        "CVRG reference data", "reference_matrix.tsv",
        data=b"#groups: A\tB\nprobe\ts1\ts2\np1\t1\t2\n",
        ext="tabular", description="tiny reference",
    )
    return lib


def test_create_and_list(app, library):
    assert app.libraries.list_for("boliu") == [library]
    with pytest.raises(LibraryError, match="exists"):
        app.libraries.create("CVRG reference data")
    with pytest.raises(LibraryError, match="no such library"):
        app.libraries.get("nope")


def test_import_references_same_payload(app, history, library):
    item = next(iter(library.items.values()))
    ds = app.libraries.import_to_history(
        "CVRG reference data", item.id, history, "boliu"
    )
    assert ds.usable
    assert ds.file_path == item.file_path   # no copy
    assert "imported from library" in ds.info
    # and it is immediately usable as a tool input
    job = app.run_tool("boliu", history, "upper1", inputs=[ds])
    app.ctx.sim.run(until=app.jobs.when_done(job))
    assert job.state == JobState.OK


def test_restricted_library_access(app, history):
    app.create_user("insider")
    app.libraries.create("private", restricted_to={"insider"})
    item = app.libraries.add_item("private", "secret.txt", data=b"s", ext="txt")
    assert app.libraries.list_for("boliu") == []
    with pytest.raises(LibraryError, match="may not read"):
        app.libraries.import_to_history("private", item.id, history, "boliu")
    insider_history = app.create_history("insider")
    ds = app.libraries.import_to_history("private", item.id, insider_history, "insider")
    assert ds.usable


def test_missing_item(app, history, library):
    with pytest.raises(LibraryError, match="no item"):
        app.libraries.import_to_history("CVRG reference data", 999, history, "boliu")
