"""Property checks on workflow DAG generation: the WaaS demand model
must be acyclic, seed-reproducible, and immune to kernel mode knobs."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import set_default_dispatch, set_default_scheduler
from repro.workloads.generators import DAG_SHAPES, make_workflow_dag

dag_args = dict(
    shape=st.sampled_from(DAG_SHAPES),
    n_tasks=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


@settings(max_examples=60, deadline=None)
@given(**dag_args)
def test_property_dags_validate_and_edges_point_backwards(shape, n_tasks, seed):
    dag = make_workflow_dag(shape, n_tasks=n_tasks, seed=seed)
    dag.validate()  # dense ids, non-negative work, parents < id
    assert dag.n_tasks == n_tasks
    for t in dag.tasks:
        assert all(p < t.id for p in t.parents)
        assert len(set(t.parents)) == len(t.parents), "duplicate edge"
    # every non-root task is reachable from task 0 (single entry point)
    for t in dag.tasks[1:]:
        assert t.parents, f"task {t.id} has no parents (disconnected)"


@settings(max_examples=40, deadline=None)
@given(**dag_args)
def test_property_same_args_same_dag(shape, n_tasks, seed):
    assert make_workflow_dag(shape, n_tasks=n_tasks, seed=seed) == (
        make_workflow_dag(shape, n_tasks=n_tasks, seed=seed)
    )


@settings(max_examples=40, deadline=None)
@given(**dag_args)
def test_property_work_bounds_and_critical_path(shape, n_tasks, seed):
    dag = make_workflow_dag(shape, n_tasks=n_tasks, seed=seed,
                            mean_work_s=90.0, work_spread=4.0)
    for t in dag.tasks:
        # log-uniform over [mean/spread, mean*spread], ms-rounded
        assert 90.0 / 4.0 - 0.001 <= t.cpu_work <= 90.0 * 4.0 + 0.001
        assert t.cpu_work == round(t.cpu_work, 3)
    cp = dag.critical_path_work()
    assert 0 < cp <= dag.total_work + 1e-9
    longest_task = max(t.cpu_work for t in dag.tasks)
    assert cp >= longest_task - 1e-9


@settings(max_examples=20, deadline=None)
@given(**dag_args)
def test_property_work_survives_json_round_trip(shape, n_tasks, seed):
    dag = make_workflow_dag(shape, n_tasks=n_tasks, seed=seed)
    works = [t.cpu_work for t in dag.tasks]
    assert json.loads(json.dumps(works)) == works


@settings(max_examples=20, deadline=None)
@given(**dag_args)
def test_property_generation_ignores_kernel_mode_knobs(shape, n_tasks, seed):
    """The demand model must not read the dispatch/scheduler defaults —
    otherwise the bench's byte-identity pins across modes would be a
    property of luck rather than construction."""
    baseline = make_workflow_dag(shape, n_tasks=n_tasks, seed=seed)
    old_sched = set_default_scheduler("heap")
    old_disp = set_default_dispatch("cohort")
    try:
        for sched in ("heap", "wheel"):
            for disp in ("scalar", "cohort"):
                set_default_scheduler(sched)
                set_default_dispatch(disp)
                assert make_workflow_dag(shape, n_tasks=n_tasks, seed=seed) == baseline
    finally:
        set_default_scheduler(old_sched)
        set_default_dispatch(old_disp)


def test_chain_and_fanout_structure():
    chain = make_workflow_dag("chain", n_tasks=5, seed=0)
    assert [t.parents for t in chain.tasks] == [(), (0,), (1,), (2,), (3,)]
    fan = make_workflow_dag("fanout", n_tasks=6, seed=0)
    assert fan.tasks[0].parents == ()
    assert all(t.parents == (0,) for t in fan.tasks[1:-1])
    assert fan.tasks[-1].parents == (1, 2, 3, 4)
