"""Endpoints fronting several GridFTP servers balance their load."""

from repro.calibration import MB
from repro.cluster import SimFilesystem
from repro.transfer import GridFTPServer, TaskStatus, TransferItem, TransferSpec

from .conftest import Testbed


def test_concurrent_tasks_spread_over_servers():
    bed = Testbed()
    shared_fs = SimFilesystem("big-site")
    servers = [
        GridFTPServer(
            ctx=bed.ctx, hostname=f"dtn{i}.ec2", site="ec2", fs=shared_fs,
            max_connections=1,
        )
        for i in range(2)
    ]
    bed.go.create_endpoint("cvrg#striped", servers, public=True)
    tasks = []
    for i in range(2):
        path = f"/home/boliu/big{i}.dat"
        bed.laptop_fs.write(path, size=512 * MB)
        tasks.append(
            bed.go.submit(
                "boliu",
                TransferSpec(
                    source_endpoint="boliu#laptop",
                    dest_endpoint="cvrg#striped",
                    items=[TransferItem(path, f"/in/big{i}.dat")],
                    notify=False,
                ),
            )
        )
    bed.ctx.sim.run(until=bed.ctx.sim.all_of([bed.go.when_done(t) for t in tasks]))
    assert all(t.status == TaskStatus.SUCCEEDED for t in tasks)
    # both data movers actually carried traffic
    assert all(s.bytes_moved > 0 for s in servers)
    # and both files landed on the shared site filesystem
    assert shared_fs.stat("/in/big0.dat").size == 512 * MB
    assert shared_fs.stat("/in/big1.dat").size == 512 * MB


def test_single_server_endpoint_still_works():
    bed = Testbed()
    path = bed.put_file()
    task = bed.go.submit(
        "boliu",
        TransferSpec(
            source_endpoint="boliu#laptop",
            dest_endpoint="cvrg#galaxy",
            items=[TransferItem(path, "/g/x.dat")],
            notify=False,
        ),
    )
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED
