"""Transfer sync/mirror mode: 'moving or synchronizing large quantities'."""

import pytest

from repro.calibration import MB
from repro.transfer import TaskStatus, TransferItem, TransferSpec

from .conftest import Testbed


def sync_spec(sync_level, items):
    return TransferSpec(
        source_endpoint="boliu#laptop",
        dest_endpoint="cvrg#galaxy",
        items=items,
        sync_level=sync_level,
        notify=False,
    )


def test_invalid_sync_level_rejected():
    with pytest.raises(ValueError, match="sync_level"):
        TransferSpec("a#b", "c#d", items=[], sync_level="maybe")


def test_sync_exists_skips_present_files(bed):
    for i in range(3):
        bed.put_file(f"/home/boliu/mirror/f{i}.dat", size=10 * MB)
    # pre-place one file at the destination
    bed.galaxy_fs.write("/mirror/f1.dat", size=10 * MB)
    items = [
        TransferItem(f"/home/boliu/mirror/f{i}.dat", f"/mirror/f{i}.dat")
        for i in range(3)
    ]
    task = bed.go.submit("boliu", sync_spec("exists", items))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED
    assert task.files_transferred == 2
    assert task.files_skipped == 1
    assert any(e.code == "SKIPPED" for e in task.events)


def test_sync_checksum_retransfers_changed_content(bed):
    bed.laptop_fs.write("/home/boliu/a.txt", data=b"new content")
    bed.galaxy_fs.write("/a.txt", data=b"old content")
    task = bed.go.submit(
        "boliu", sync_spec("checksum", [TransferItem("/home/boliu/a.txt", "/a.txt")])
    )
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.files_transferred == 1
    assert task.files_skipped == 0
    assert bed.galaxy_fs.read("/a.txt") == b"new content"


def test_sync_checksum_skips_identical_content(bed):
    bed.laptop_fs.write("/home/boliu/a.txt", data=b"same bytes")
    bed.galaxy_fs.write("/a.txt", data=b"same bytes")
    task = bed.go.submit(
        "boliu", sync_spec("checksum", [TransferItem("/home/boliu/a.txt", "/a.txt")])
    )
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.files_skipped == 1
    assert task.files_transferred == 0


def test_sync_checksum_source_vanishing_mid_task_fails_task(bed):
    """A source file deleted between expansion and the checksum compare
    must FAIL the task, not crash the simulation (regression)."""
    bed.laptop_fs.write("/home/boliu/a.txt", data=b"payload")
    bed.galaxy_fs.write("/a.txt", data=b"stale")
    task = bed.go.submit(
        "boliu", sync_spec("checksum", [TransferItem("/home/boliu/a.txt", "/a.txt")])
    )

    def vanish():
        # after item expansion (t=0.5s) but before the compare (t>3s)
        yield bed.ctx.sim.timeout(1.0)
        bed.laptop_fs.remove("/home/boliu/a.txt")

    bed.ctx.sim.process(vanish(), name="vanish")
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.FAILED
    assert task.files_transferred == 0
    assert any(e.code == "FAILED" for e in task.events)


def test_second_sync_run_is_all_skips_and_fast(bed):
    for i in range(4):
        bed.put_file(f"/home/boliu/m/f{i}.dat", size=50 * MB)
    items = [TransferItem(f"/home/boliu/m/f{i}.dat", f"/m/f{i}.dat") for i in range(4)]
    t1 = bed.go.submit("boliu", sync_spec("checksum", items))
    bed.ctx.sim.run(until=bed.go.when_done(t1))
    t2 = bed.go.submit("boliu", sync_spec("checksum", items))
    bed.ctx.sim.run(until=bed.go.when_done(t2))
    assert t2.files_skipped == 4
    assert t2.duration_s < t1.duration_s / 5


def test_sync_checksum_retransfers_rewritten_same_size_bulk_file(bed):
    """Regression: bulk checksums were `bulk:{size}`, so re-writing a
    size-only file with fresh content of the same size compared equal to
    the stale destination copy and sync silently skipped it."""
    path = bed.put_file("/home/boliu/nightly.zip", size=50 * MB)
    items = [TransferItem(path, "/nightly.zip")]
    t1 = bed.go.submit("boliu", sync_spec("checksum", items))
    bed.ctx.sim.run(until=bed.go.when_done(t1))
    assert t1.files_transferred == 1

    # the nightly build rewrites the archive; same size, new content
    bed.laptop_fs.write(path, size=50 * MB, mtime=bed.ctx.now)
    t2 = bed.go.submit("boliu", sync_spec("checksum", items))
    bed.ctx.sim.run(until=bed.go.when_done(t2))
    assert t2.files_transferred == 1, "re-written bulk file must re-transfer"
    assert t2.files_skipped == 0
    # and the destination now carries the fresh token
    assert (
        bed.galaxy_fs.stat("/nightly.zip").checksum
        == bed.laptop_fs.stat(path).checksum
    )


def test_sync_checksum_still_skips_unchanged_bulk_file(bed):
    """The counterpart: an *unchanged* bulk file keeps its token through
    the copy, so a second sync is still a skip."""
    path = bed.put_file("/home/boliu/stable.zip", size=50 * MB)
    items = [TransferItem(path, "/stable.zip")]
    t1 = bed.go.submit("boliu", sync_spec("checksum", items))
    bed.ctx.sim.run(until=bed.go.when_done(t1))
    t2 = bed.go.submit("boliu", sync_spec("checksum", items))
    bed.ctx.sim.run(until=bed.go.when_done(t2))
    assert t2.files_skipped == 1
    assert t2.files_transferred == 0


def test_sync_checksum_distinguishes_distinct_same_size_bulk_files(bed):
    """Two different archives of identical size must not alias."""
    a = bed.put_file("/home/boliu/a.zip", size=10 * MB)
    bed.galaxy_fs.write("/a.zip", size=10 * MB)  # unrelated same-size file
    task = bed.go.submit(
        "boliu", sync_spec("checksum", [TransferItem(a, "/a.zip")])
    )
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.files_transferred == 1
    assert task.files_skipped == 0
