"""TransferClient (REST facade), FTP/HTTP baselines, sites, GridFTP."""

import pytest

from repro.calibration import GB, MB
from repro.cloud import NetworkPath
from repro.cluster import SimFilesystem
from repro.transfer import (
    FTPUploader,
    GlobusAPIError,
    GridFTPError,
    GridFTPServer,
    HTTPUploader,
    SiteGraph,
    TransferClient,
    UploadError,
)

from .conftest import Testbed


# -- TransferClient ----------------------------------------------------------


def test_client_requires_known_account(bed):
    with pytest.raises(GlobusAPIError) as err:
        TransferClient(bed.go, "ghost")
    assert err.value.status == 401


def test_submit_and_poll_task(bed):
    path = bed.put_file()
    client = TransferClient(bed.go, "boliu")
    doc = client.submit_transfer(
        client.get_submission_id(),
        "boliu#laptop",
        "cvrg#galaxy",
        [(path, "/galaxy/database/data.zip")],
        label="from api",
    )
    assert doc.status == "ACTIVE"
    bed.ctx.sim.run(until=client.when_task_done(doc.task_id))
    final = client.get_task(doc.task_id)
    assert final.status == "SUCCEEDED"
    assert final.files_transferred == 1
    assert client.task_successful(doc.task_id)
    events = client.task_event_list(doc.task_id)
    assert events[0]["code"] == "SUBMITTED"
    assert events[-1]["code"] == "SUCCEEDED"


def test_submission_id_reuse_rejected(bed):
    path = bed.put_file()
    client = TransferClient(bed.go, "boliu")
    sid = client.get_submission_id()
    client.submit_transfer(sid, "boliu#laptop", "cvrg#galaxy", [(path, "/g/a")])
    with pytest.raises(GlobusAPIError) as err:
        client.submit_transfer(sid, "boliu#laptop", "cvrg#galaxy", [(path, "/g/b")])
    assert err.value.status == 409


def test_bad_endpoint_is_400(bed):
    client = TransferClient(bed.go, "boliu")
    with pytest.raises(GlobusAPIError) as err:
        client.submit_transfer(
            client.get_submission_id(), "boliu#nope", "cvrg#galaxy", [("/a", "/b")]
        )
    assert err.value.status == 400


def test_task_of_other_user_is_403(bed):
    path = bed.put_file()
    owner = TransferClient(bed.go, "boliu")
    doc = owner.submit_transfer(
        owner.get_submission_id(), "boliu#laptop", "cvrg#galaxy", [(path, "/g/x")]
    )
    bed.go.register_user("snoop")
    snoop = TransferClient(bed.go, "snoop")
    with pytest.raises(GlobusAPIError) as err:
        snoop.get_task(doc.task_id)
    assert err.value.status == 403


def test_unknown_task_is_404(bed):
    client = TransferClient(bed.go, "boliu")
    with pytest.raises(GlobusAPIError) as err:
        client.get_task("go-task-424242")
    assert err.value.status == 404


def test_endpoint_list_and_activate(bed):
    client = TransferClient(bed.go, "boliu")
    assert client.endpoint_list() == ["boliu#laptop", "cvrg#galaxy"]
    expiry = client.endpoint_activate("cvrg#galaxy")
    assert expiry > bed.ctx.now
    bed.go.register_user("nocred")
    nocred = TransferClient(bed.go, "nocred")
    with pytest.raises(GlobusAPIError) as err:
        nocred.endpoint_activate("cvrg#galaxy")
    assert err.value.status == 400


# -- FTP / HTTP baselines ------------------------------------------------------


def run_upload(bed, uploader_cls, size, dst="/galaxy/database/up.dat"):
    src = bed.put_file("/home/boliu/up.dat", size=size)
    up = uploader_cls(bed.ctx)
    proc = bed.ctx.sim.process(
        up.upload(bed.laptop_fs, src, bed.galaxy_fs, dst)
    )
    return bed.ctx.sim.run(until=proc)


def test_ftp_upload_moves_file(bed):
    result = run_upload(bed, FTPUploader, 10 * MB)
    assert bed.galaxy_fs.stat("/galaxy/database/up.dat").size == 10 * MB
    assert result.protocol == "ftp"
    assert 0.1 < result.rate_mbps < 6.5


def test_http_upload_slower_than_ftp(bed):
    ftp = run_upload(bed, FTPUploader, 5 * MB, dst="/g/ftp.dat")
    http = run_upload(bed, HTTPUploader, 5 * MB, dst="/g/http.dat")
    assert http.seconds > ftp.seconds
    assert http.rate_mbps < 0.03


def test_http_refuses_over_2gb(bed):
    src = bed.put_file("/home/boliu/huge.dat", size=2 * GB + 1)
    up = HTTPUploader(bed.ctx)
    proc = bed.ctx.sim.process(
        up.upload(bed.laptop_fs, src, bed.galaxy_fs, "/g/huge.dat")
    )
    with pytest.raises(UploadError, match="exceeds"):
        bed.ctx.sim.run(until=proc)


def test_upload_missing_source(bed):
    up = FTPUploader(bed.ctx)
    with pytest.raises(UploadError, match="ghost"):
        # the generator raises at creation time (stat happens eagerly)
        proc = bed.ctx.sim.process(
            up.upload(bed.laptop_fs, "/ghost", bed.galaxy_fs, "/g/x")
        )
        bed.ctx.sim.run(until=proc)


def test_upload_preserves_content(bed):
    bed.laptop_fs.write("/home/boliu/small.txt", data=b"content!")
    up = FTPUploader(bed.ctx)
    proc = bed.ctx.sim.process(
        up.upload(bed.laptop_fs, "/home/boliu/small.txt", bed.galaxy_fs, "/g/s.txt")
    )
    bed.ctx.sim.run(until=proc)
    assert bed.galaxy_fs.read("/g/s.txt") == b"content!"


# -- SiteGraph -------------------------------------------------------------------


def test_site_graph_paths():
    g = SiteGraph.paper_testbed()
    assert g.path("laptop", "ec2").rtt_s == pytest.approx(0.05)
    assert g.path("ec2", "laptop") is g.path("laptop", "ec2")
    # same-site is LAN-fast
    assert g.path("ec2", "ec2").rtt_s < 0.01
    # unknown pairs use the default WAN
    assert g.path("mars", "ec2") is g.default


def test_site_graph_rejects_self_connect():
    g = SiteGraph()
    with pytest.raises(ValueError):
        g.connect("a", "a", NetworkPath.paper_wan())


# -- GridFTP server --------------------------------------------------------------


def test_gridftp_direct_third_party_transfer(bed):
    bed.laptop_fs.write("/home/boliu/x.bin", size=50 * MB)
    proc = bed.ctx.sim.process(
        bed.laptop_server.transfer_file(
            bed.galaxy_server,
            "/home/boliu/x.bin",
            "/incoming/x.bin",
            bed.sites.path("laptop", "ec2"),
        )
    )
    size, seconds = bed.ctx.sim.run(until=proc)
    assert size == 50 * MB
    assert seconds > 0
    assert bed.galaxy_fs.stat("/incoming/x.bin").size == 50 * MB
    assert bed.laptop_server.bytes_moved >= 50 * MB


def test_gridftp_stat_missing(bed):
    with pytest.raises(GridFTPError):
        bed.laptop_server.stat("/nope")


def test_gridftp_list_files_on_file_and_dir(bed):
    bed.laptop_fs.write("/d/a", size=1)
    bed.laptop_fs.write("/d/sub/b", size=1)
    assert bed.laptop_server.list_files("/d/a") == ["/d/a"]
    assert bed.laptop_server.list_files("/d") == ["/d/a", "/d/sub/b"]
    with pytest.raises(GridFTPError, match="no such path"):
        bed.laptop_server.list_files("/missing")


def test_gridftp_invalid_parallel(bed):
    with pytest.raises(GridFTPError):
        bed.laptop_server.stream_plan(1024, parallel=0)
