"""Shared fixtures: a two-site testbed with registered users and endpoints."""

import pytest

from repro.calibration import MB
from repro.cluster import SimFilesystem
from repro.security import CertificateAuthority
from repro.simcore import SimContext
from repro.transfer import GlobusOnline, GridFTPServer, SiteGraph


class Testbed:
    __test__ = False  # not a test class despite being used by tests

    def __init__(self, fault_rate=0.0, seed=7):
        self.ctx = SimContext(seed=seed)
        self.ca = CertificateAuthority("GP-CA")
        self.sites = SiteGraph.paper_testbed()
        self.go = GlobusOnline(
            self.ctx, sites=self.sites, ca=self.ca, fault_rate=fault_rate
        )
        # laptop endpoint (Globus Connect) owned by boliu
        self.laptop_fs = SimFilesystem("laptop")
        self.laptop_server = GridFTPServer(
            ctx=self.ctx, hostname="laptop.local", site="laptop", fs=self.laptop_fs
        )
        # galaxy endpoint on EC2 owned by cvrg
        self.galaxy_fs = SimFilesystem("galaxy")
        self.galaxy_server = GridFTPServer(
            ctx=self.ctx, hostname="galaxy.ec2", site="ec2", fs=self.galaxy_fs
        )
        self.go.register_user("boliu", "boliu@uchicago.edu")
        self.go.register_user("cvrg")
        self.boliu_cert = self.ca.issue_user_cert("boliu", now=self.ctx.now)
        self.go.add_user_credential("boliu", self.boliu_cert)
        self.go.create_endpoint("boliu#laptop", [self.laptop_server])
        self.go.create_endpoint("cvrg#galaxy", [self.galaxy_server], public=True)

    def put_file(self, path="/home/boliu/data.zip", size=10 * MB):
        self.laptop_fs.write(path, size=size)
        return path


@pytest.fixture
def bed():
    return Testbed()
