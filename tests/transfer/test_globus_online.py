"""Globus Online service: accounts, endpoints, activation, transfer tasks."""

import pytest

from repro.calibration import GB, MB
from repro.security import CertificateAuthority
from repro.simcore import SimContext
from repro.transfer import (
    GlobusError,
    GlobusOnline,
    TaskStatus,
    TransferItem,
    TransferSpec,
)

from .conftest import Testbed


def simple_spec(src="/home/boliu/data.zip", dst="/galaxy/database/data.zip", **kw):
    return TransferSpec(
        source_endpoint="boliu#laptop",
        dest_endpoint="cvrg#galaxy",
        items=[TransferItem(src, dst)],
        **kw,
    )


def test_register_duplicate_user():
    go = GlobusOnline(SimContext(seed=0))
    go.register_user("a")
    with pytest.raises(GlobusError, match="taken"):
        go.register_user("a")


def test_endpoint_name_must_be_qualified(bed):
    with pytest.raises(GlobusError, match="owner#display"):
        bed.go.create_endpoint("unqualified", [bed.laptop_server])


def test_endpoint_owner_must_exist(bed):
    with pytest.raises(GlobusError, match="no Globus Online account"):
        bed.go.create_endpoint("ghost#ep", [bed.laptop_server])


def test_endpoint_needs_servers(bed):
    with pytest.raises(GlobusError, match="at least one"):
        bed.go.create_endpoint("boliu#empty", [])


def test_list_endpoints_visibility(bed):
    bed.go.register_user("other")
    names = [e.name for e in bed.go.list_endpoints("other")]
    assert "cvrg#galaxy" in names      # public
    assert "boliu#laptop" not in names  # private to boliu
    assert [e.name for e in bed.go.list_endpoints("boliu")] == [
        "boliu#laptop",
        "cvrg#galaxy",
    ]


def test_successful_transfer_moves_file(bed):
    path = bed.put_file(size=10 * MB)
    task = bed.go.submit("boliu", simple_spec(src=path))
    assert task.status == TaskStatus.ACTIVE
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED
    assert bed.galaxy_fs.stat("/galaxy/database/data.zip").size == 10 * MB
    assert task.bytes_transferred == 10 * MB
    assert task.files_transferred == 1


def test_transfer_autoactivates_endpoints(bed):
    path = bed.put_file()
    assert not bed.go.endpoint("cvrg#galaxy").is_activated("boliu", bed.ctx.now)
    task = bed.go.submit("boliu", simple_spec(src=path))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED
    assert bed.go.endpoint("cvrg#galaxy").is_activated("boliu", bed.ctx.now)
    codes = [e.code for e in task.events]
    assert "ACTIVATED" in codes


def test_transfer_fails_without_credential(bed):
    bed.go.register_user("nocred")
    path = bed.put_file()
    spec = simple_spec(src=path)
    task = bed.go.submit("nocred", spec)
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.FAILED
    assert "no credential" in task.fatal_error


def test_transfer_fails_with_expired_credential():
    bed = Testbed()
    bed.ca.revoke(bed.boliu_cert)
    path = bed.put_file()
    task = bed.go.submit("boliu", simple_spec(src=path))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.FAILED
    assert "revoked" in task.fatal_error


def test_missing_source_file_fails_task(bed):
    task = bed.go.submit("boliu", simple_spec(src="/home/boliu/ghost.zip"))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.FAILED
    assert "ghost.zip" in task.fatal_error


def test_unknown_endpoint_rejected_at_submit(bed):
    spec = TransferSpec(
        source_endpoint="boliu#nope",
        dest_endpoint="cvrg#galaxy",
        items=[TransferItem("/a", "/b")],
    )
    with pytest.raises(GlobusError, match="no such endpoint"):
        bed.go.submit("boliu", spec)


def test_empty_items_rejected(bed):
    with pytest.raises(GlobusError, match="at least one item"):
        bed.go.submit(
            "boliu",
            TransferSpec("boliu#laptop", "cvrg#galaxy", items=[]),
        )


def test_email_notification_on_success(bed):
    path = bed.put_file()
    task = bed.go.submit("boliu", simple_spec(src=path, label="upload cel files"))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert len(bed.go.emails) == 1
    mail = bed.go.emails[0]
    assert mail.to == "boliu@uchicago.edu"
    assert "SUCCEEDED" in mail.subject
    assert "upload cel files" in mail.body


def test_notify_false_suppresses_email(bed):
    path = bed.put_file()
    task = bed.go.submit("boliu", simple_spec(src=path, notify=False))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert bed.go.emails == []


def test_deadline_exceeded_fails_task(bed):
    path = bed.put_file(size=1 * GB)
    task = bed.go.submit("boliu", simple_spec(src=path, deadline_s=10.0))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.FAILED
    assert "deadline" in task.fatal_error
    # failed exactly at the deadline, not after
    assert task.completion_time == pytest.approx(task.submit_time + 10.0)
    assert not bed.galaxy_fs.exists("/galaxy/database/data.zip")


def test_generous_deadline_succeeds(bed):
    path = bed.put_file(size=1 * MB)
    task = bed.go.submit("boliu", simple_spec(src=path, deadline_s=3600.0))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED


def test_faults_are_retried_and_counted():
    bed = Testbed(fault_rate=0.4, seed=123)
    path = bed.put_file(size=100 * MB)
    task = bed.go.submit("boliu", simple_spec(src=path))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    # with 40% fault rate and several attempts, at least one fault occurred
    assert task.status in (TaskStatus.SUCCEEDED, TaskStatus.FAILED)
    if task.status == TaskStatus.SUCCEEDED:
        assert bed.galaxy_fs.exists("/galaxy/database/data.zip")
    assert task.faults >= 1
    assert any(e.code == "FAULT" for e in task.events)


def test_fault_free_service_has_no_fault_events(bed):
    path = bed.put_file(size=100 * MB)
    task = bed.go.submit("boliu", simple_spec(src=path))
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.faults == 0
    assert task.status == TaskStatus.SUCCEEDED


def test_recursive_directory_transfer(bed):
    for i in range(3):
        bed.laptop_fs.write(f"/home/boliu/celdir/sample_{i}.cel", size=MB)
    bed.laptop_fs.write("/home/boliu/celdir/nested/readme.txt", data=b"notes")
    spec = TransferSpec(
        source_endpoint="boliu#laptop",
        dest_endpoint="cvrg#galaxy",
        items=[TransferItem("/home/boliu/celdir", "/galaxy/database/celdir", recursive=True)],
    )
    task = bed.go.submit("boliu", spec)
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED
    assert task.files_transferred == 4
    assert bed.galaxy_fs.exists("/galaxy/database/celdir/sample_0.cel")
    assert bed.galaxy_fs.read("/galaxy/database/celdir/nested/readme.txt") == b"notes"


def test_third_party_transfer_neither_endpoint_local(bed):
    """boliu triggers cvrg#galaxy -> cvrg#repo without touching his laptop."""
    repo_fs = __import__("repro.cluster", fromlist=["SimFilesystem"]).SimFilesystem("repo")
    from repro.transfer import GridFTPServer

    repo_server = GridFTPServer(
        ctx=bed.ctx, hostname="repo.cvrg.org", site="cvrg", fs=repo_fs
    )
    bed.go.create_endpoint("cvrg#repo", [repo_server], public=True)
    bed.galaxy_fs.write("/galaxy/database/results.txt", data=b"top table")
    spec = TransferSpec(
        source_endpoint="cvrg#galaxy",
        dest_endpoint="cvrg#repo",
        items=[TransferItem("/galaxy/database/results.txt", "/archive/results.txt")],
    )
    task = bed.go.submit("boliu", spec)
    bed.ctx.sim.run(until=bed.go.when_done(task))
    assert task.status == TaskStatus.SUCCEEDED
    assert repo_fs.read("/archive/results.txt") == b"top table"


def test_bigger_files_take_longer(bed):
    p1 = bed.put_file("/home/boliu/small.zip", size=1 * MB)
    t1 = bed.go.submit("boliu", simple_spec(src=p1, dst="/g/small.zip"))
    bed.ctx.sim.run(until=bed.go.when_done(t1))
    d1 = t1.duration_s

    p2 = bed.put_file("/home/boliu/big.zip", size=512 * MB)
    t2 = bed.go.submit("boliu", simple_spec(src=p2, dst="/g/big.zip"))
    bed.ctx.sim.run(until=bed.go.when_done(t2))
    assert t2.duration_s > d1


def test_effective_rate_grows_with_size(bed):
    """The Fig. 11 mechanism: overhead amortises, streams scale up."""
    rates = []
    for i, size in enumerate([1 * MB, 100 * MB, 1 * GB]):
        p = bed.put_file(f"/home/boliu/f{i}.bin", size=size)
        t = bed.go.submit("boliu", simple_spec(src=p, dst=f"/g/f{i}.bin"))
        bed.ctx.sim.run(until=bed.go.when_done(t))
        rates.append(t.effective_rate_mbps())
    assert rates[0] < rates[1] < rates[2]


def test_forced_parallel_streams(bed):
    """Forcing 1 stream on a big file is slower than auto-tuned 4."""
    p = bed.put_file("/home/boliu/big1.bin", size=1 * GB)
    t1 = bed.go.submit("boliu", simple_spec(src=p, dst="/g/a.bin", parallel=1))
    bed.ctx.sim.run(until=bed.go.when_done(t1))
    p2 = bed.put_file("/home/boliu/big2.bin", size=1 * GB)
    t4 = bed.go.submit("boliu", simple_spec(src=p2, dst="/g/b.bin"))
    bed.ctx.sim.run(until=bed.go.when_done(t4))
    assert t4.duration_s < t1.duration_s / 2


def test_invalid_fault_rate():
    with pytest.raises(ValueError):
        GlobusOnline(SimContext(seed=0), fault_rate=1.5)


def test_task_lookup(bed):
    path = bed.put_file()
    task = bed.go.submit("boliu", simple_spec(src=path))
    assert bed.go.task(task.task_id) is task
    with pytest.raises(GlobusError):
        bed.go.task("go-task-999999")
