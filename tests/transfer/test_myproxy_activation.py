"""Endpoint activation through MyProxy (the 2012 credential flow)."""

import pytest

from repro.security import CertificateAuthority, MyProxyServer
from repro.transfer import GlobusError

from .conftest import Testbed


@pytest.fixture
def myproxy_world():
    bed = Testbed()
    myproxy = MyProxyServer(ca=bed.ca)
    cert = bed.ca.issue_user_cert("boliu-mp", now=bed.ctx.now)
    # no profile credential for this user: only MyProxy has one
    bed.go.register_user("boliu-mp")
    myproxy.store("boliu-mp", cert, "secret-pass", now=bed.ctx.now)
    return bed, myproxy


def test_myproxy_activation_succeeds(myproxy_world):
    bed, myproxy = myproxy_world
    expiry = bed.go.activate_endpoint_myproxy(
        "cvrg#galaxy", "boliu-mp", myproxy, "boliu-mp", "secret-pass"
    )
    assert expiry > bed.ctx.now
    assert bed.go.endpoint("cvrg#galaxy").is_activated("boliu-mp", bed.ctx.now)


def test_myproxy_activation_bad_passphrase(myproxy_world):
    bed, myproxy = myproxy_world
    with pytest.raises(GlobusError, match="MyProxy"):
        bed.go.activate_endpoint_myproxy(
            "cvrg#galaxy", "boliu-mp", myproxy, "boliu-mp", "wrong-pass"
        )
    assert not bed.go.endpoint("cvrg#galaxy").is_activated("boliu-mp", bed.ctx.now)


def test_myproxy_proxy_lifetime_caps_activation(myproxy_world):
    bed, myproxy = myproxy_world
    stored = myproxy.credentials["boliu-mp"]
    # tighten the delegation ceiling
    stored.max_delegation_lifetime_s = 600.0
    expiry = bed.go.activate_endpoint_myproxy(
        "cvrg#galaxy", "boliu-mp", myproxy, "boliu-mp", "secret-pass"
    )
    assert expiry <= bed.ctx.now + 600.0 + 1e-9


def test_activation_expires(myproxy_world):
    bed, myproxy = myproxy_world
    bed.go.activate_endpoint_myproxy(
        "cvrg#galaxy", "boliu-mp", myproxy, "boliu-mp", "secret-pass",
        lifetime_s=100.0,
    )
    ep = bed.go.endpoint("cvrg#galaxy")
    assert ep.is_activated("boliu-mp", bed.ctx.now + 50.0)
    assert not ep.is_activated("boliu-mp", bed.ctx.now + 101.0)
